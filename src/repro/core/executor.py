"""Parallel batched execution: worker pools, prefetch, batch sizing.

DeepLens queries are dominated by two waits — per-patch UDF inference and
blob I/O — and both parallelize: UDF maps are pure per-row, so batches can
fan out across a thread pool with ordered collection (result order and
lineage keys are preserved exactly), and storage batches can be decoded
one step ahead of the consumer so I/O overlaps inference. This module
holds the three pieces the planner threads through the physical plan:

* :class:`ExecutionContext` — the session/query knobs (worker count,
  batch size, prefetch depth), carried from :class:`~repro.core.session.
  DeepLens` / ``QueryBuilder.with_execution`` into lowering;
* :class:`ExecutionPlan` — the *resolved* configuration of one planned
  query (the batch size the planner actually picked, and from what),
  surfaced per plan in ``explain()``;
* :class:`PrefetchBatches` — a bounded background-thread queue between a
  storage scan and the first UDF map, so the next batch's heap reads and
  decodes run while the current batch is being inferred;
* :func:`run_ordered` — the ordered fan-out loop ``MapPatches`` dispatches
  batches through: at most ``workers + prefetch`` batches in flight,
  results consumed strictly in submission order, worker exceptions
  re-raised on the driver with their original type and traceback.

Threads, not processes: the heavy UDFs this system models (numpy/BLAS
kernels, accelerator or RPC inference) release the GIL while they wait,
which is exactly when a thread pool scales. A process pool for GIL-bound
Python UDFs is a recorded seam, not built here.
"""

from __future__ import annotations

import contextvars
import math
import queue
import threading
import time

from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

from repro.core.operators.base import (
    DEFAULT_BATCH_SIZE,
    Batch,
    Operator,
    Row,
)
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import MetricsRegistry
    from repro.core.profile import RuntimeProfile

T = TypeVar("T")
R = TypeVar("R")

#: smallest planner-chosen batch — below this, per-batch overhead
#: (generator hops, pool dispatch) swamps any fan-out win
MIN_BATCH_SIZE = 16

#: batches the planner aims to hand each worker, so the pool stays busy
#: through stragglers without shrinking batches into dispatch overhead
BATCHES_PER_WORKER = 4


@dataclass(frozen=True)
class ExecutionContext:
    """Execution knobs for one session or one query.

    ``workers=1`` (the default) is the serial engine — bit-identical to
    the pre-parallel executor, no threads spawned. ``workers>1`` fans UDF
    map batches across a thread pool and inserts a prefetch stage between
    storage scans and the first map. ``batch_size=None`` lets the planner
    pick from cardinality estimates; an explicit value is used as given.
    ``prefetch_batches`` bounds both the scan-side prefetch queue and the
    extra in-flight map batches beyond the worker count.

    ``profile`` carries a :class:`~repro.core.profile.RuntimeProfile`
    when this plan should be instrumented (``explain(analyze=True)``);
    it rides along without affecting equality or planning decisions.
    ``metrics`` rides along the same way: the session's
    :class:`~repro.core.metrics.MetricsRegistry`, so the executor's
    fan-out loop and prefetch stage can report batches, worker wall
    time, and queue depth without any global state.
    """

    workers: int = 1
    batch_size: int | None = None
    prefetch_batches: int = 2
    profile: "RuntimeProfile | None" = field(
        default=None, compare=False, repr=False
    )
    metrics: "MetricsRegistry | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise QueryError(f"workers must be positive, got {self.workers}")
        if self.batch_size is not None and self.batch_size < 1:
            raise QueryError(
                f"batch size must be positive, got {self.batch_size}"
            )
        if self.prefetch_batches < 0:
            raise QueryError(
                f"prefetch_batches must be non-negative, got "
                f"{self.prefetch_batches}"
            )

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def override(
        self,
        *,
        workers: int | None = None,
        batch_size: int | None = None,
        prefetch_batches: int | None = None,
    ) -> "ExecutionContext":
        """A copy with the given knobs replaced (None keeps the current)."""
        updates: dict = {}
        if workers is not None:
            updates["workers"] = workers
        if batch_size is not None:
            updates["batch_size"] = batch_size
        if prefetch_batches is not None:
            updates["prefetch_batches"] = prefetch_batches
        return replace(self, **updates) if updates else self

    def with_profile(
        self, profile: "RuntimeProfile | None"
    ) -> "ExecutionContext":
        """A copy instrumented with the given runtime profile."""
        return replace(self, profile=profile)

    def with_metrics(
        self, metrics: "MetricsRegistry | None"
    ) -> "ExecutionContext":
        """A copy reporting into the given metrics registry."""
        return replace(self, metrics=metrics)


@dataclass(frozen=True)
class ExecutionPlan:
    """The resolved execution configuration of one planned query."""

    workers: int
    batch_size: int
    prefetch_batches: int
    #: where the batch size came from: ``caller-specified``,
    #: ``cardinality (~N rows)``, or ``default``
    batch_size_source: str

    def __str__(self) -> str:
        return (
            f"workers={self.workers}, batch-size={self.batch_size} "
            f"({self.batch_size_source}), prefetch={self.prefetch_batches}"
        )


def choose_batch_size(
    context: ExecutionContext, est_rows: float | None
) -> tuple[int, str]:
    """The batch size one plan should run at, with its provenance.

    A caller-specified size always wins. A parallel plan sizes batches
    from the cardinality estimate so the pool sees enough batches to keep
    every worker busy through stragglers (``workers * BATCHES_PER_WORKER``
    of them), clamped to [MIN_BATCH_SIZE, DEFAULT_BATCH_SIZE] so a
    caller's GPU/model batch contract stays the ceiling and tiny plans
    don't dissolve into dispatch overhead. A serial plan keeps the
    default: shrinking batches buys a lone thread nothing, and a full
    batch per heap trip is exactly what the vectorized scan path wants.
    """
    if context.batch_size is not None:
        return context.batch_size, "caller-specified"
    if context.workers <= 1:
        return DEFAULT_BATCH_SIZE, "default"
    if est_rows is None or est_rows <= 0 or not math.isfinite(est_rows):
        return DEFAULT_BATCH_SIZE, "default"
    target = math.ceil(est_rows / (context.workers * BATCHES_PER_WORKER))
    size = max(MIN_BATCH_SIZE, min(DEFAULT_BATCH_SIZE, target))
    return size, f"cardinality ~{est_rows:.0f} rows"


def resolve_execution(
    context: ExecutionContext, est_rows: float | None
) -> ExecutionPlan:
    """Resolve a context against a plan's cardinality estimate."""
    size, source = choose_batch_size(context, est_rows)
    return ExecutionPlan(
        workers=context.workers,
        batch_size=size,
        prefetch_batches=context.prefetch_batches,
        batch_size_source=source,
    )


def run_ordered(
    items: Iterator[T],
    fn: Callable[[T], R],
    *,
    workers: int,
    prefetch: int = 0,
    metrics: "MetricsRegistry | None" = None,
) -> Iterator[R]:
    """Map ``fn`` over ``items`` on a thread pool, yielding in order.

    At most ``workers + prefetch`` calls are in flight; results are
    consumed strictly in submission order, so a pure per-item ``fn``
    produces exactly the serial output sequence. A worker exception is
    re-raised here with its original type. On teardown (exhaustion,
    exception, or an early-exiting consumer) queued calls are cancelled
    and *running* calls are awaited — no ``fn`` outlives the generator,
    so a worker can never touch shared state (the UDF cache, the
    catalog) after the session moves on. ``items`` is advanced only on
    the driver thread, so non-thread-safe sources are fine below this.

    Each submission runs in a *copy* of the driver's context, so the
    tracing span active here is the parent of any span a worker opens
    (each copy is private to its task — a shared context cannot be
    entered by two threads at once). With ``metrics``, the pool reports
    dispatched batches and accumulated worker wall time per call.
    """
    if workers < 1:
        raise QueryError(f"workers must be positive, got {workers}")
    depth = workers + max(prefetch, 0)
    pool = ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="deeplens-exec"
    )
    batches_total = worker_seconds = None
    if metrics is not None:
        batches_total = metrics.counter(
            "deeplens_executor_batches_total",
            "batches dispatched through the ordered worker pool",
        )
        worker_seconds = metrics.counter(
            "deeplens_executor_worker_seconds_total",
            "wall time accumulated inside pool workers",
        )

    def call(item: T) -> R:
        if worker_seconds is None:
            return fn(item)
        start = time.perf_counter()
        try:
            return fn(item)
        finally:
            worker_seconds.inc(time.perf_counter() - start)

    futures: deque[Future] = deque()
    try:
        exhausted = False
        while True:
            while not exhausted and len(futures) < depth:
                try:
                    item = next(items)
                except StopIteration:
                    exhausted = True
                    break
                context = contextvars.copy_context()
                futures.append(pool.submit(context.run, call, item))
                if batches_total is not None:
                    batches_total.inc()
            if not futures:
                break
            yield futures.popleft().result()
    finally:
        # cancels the queued tail, awaits the running batches
        pool.shutdown(wait=True, cancel_futures=True)


class _ProducerFailure:
    """A producer-side exception crossing the prefetch queue."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


#: end-of-stream marker on prefetch queues
_DONE = object()


class PrefetchBatches(Operator):
    """Pull the child's batches on a background thread, ``depth`` ahead.

    Inserted by lowering between a storage scan group and the first UDF
    map when the plan runs parallel: while workers infer batch *i*, the
    scan is already reading and decoding batch *i+1* — blob I/O overlaps
    inference instead of serializing with it. The queue is bounded, so an
    early-exiting consumer (a limit) stops the producer within one batch;
    producer exceptions are re-raised on the consumer with their original
    type.
    """

    def __init__(
        self,
        child: Operator,
        depth: int = 2,
        *,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if depth < 1:
            raise QueryError(f"prefetch depth must be positive, got {depth}")
        self.child = child
        self.depth = depth
        self.arity = child.arity
        self.metrics = metrics

    def __iter__(self) -> Iterator[Row]:
        for batch in self.iter_batches(DEFAULT_BATCH_SIZE):
            yield from batch

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        buffer: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()
        high_water = (
            self.metrics.gauge(
                "deeplens_prefetch_queue_depth_highwater",
                "deepest the scan-side prefetch queue has been",
            )
            if self.metrics is not None
            else None
        )

        def offer(item) -> bool:
            """Put unless the consumer is gone; False means stop."""
            while not stop.is_set():
                try:
                    buffer.put(item, timeout=0.05)
                    if high_water is not None:
                        # qsize is approximate under concurrency, which
                        # is fine for a high-water mark
                        high_water.max_of(buffer.qsize())
                    return True
                except queue.Full:
                    if high_water is not None:
                        high_water.max_of(self.depth)
                    continue
            return False

        def produce() -> None:
            try:
                for batch in self.child.iter_batches(size):
                    if not offer(batch):
                        return
                offer(_DONE)
            except BaseException as exc:  # re-raised consumer-side
                offer(_ProducerFailure(exc))

        # the producer runs in a copy of the consumer's context, so any
        # span it opens while decoding attaches to the active trace
        producer_context = contextvars.copy_context()
        producer = threading.Thread(
            target=producer_context.run,
            args=(produce,),
            name="deeplens-prefetch",
            daemon=True,
        )
        producer.start()
        try:
            while True:
                item = buffer.get()
                if item is _DONE:
                    return
                if isinstance(item, _ProducerFailure):
                    raise item.exc
                yield item
        finally:
            stop.set()
            producer.join(timeout=5.0)
