"""Engine-wide telemetry: metrics registry, tracing spans, slow-query log.

Three pieces, layered bottom-up:

* :class:`MetricsRegistry` — thread-safe counters, gauges, and bounded
  histograms (p50/p95/p99 over a sliding sample), optionally labeled
  into families. One registry is owned by the session and threaded —
  alongside :class:`~repro.core.executor.ExecutionContext` — into the
  pager, the blob heaps, the metadata segment, the UDF cache, the
  optimizer, and the executor. Metrics are **on by default**, so every
  instrument is built for the hot batch path: callers hold a bound
  instrument (no name lookup per event) and aggregate per batch, paying
  one short lock acquisition per batch rather than per row. A disabled
  registry hands out shared no-op instruments, so instrumented code
  never branches on "is telemetry on".

* Tracing spans — :func:`trace` opens a root :class:`Span`,
  :func:`span` nests a child under whatever span is current. The
  current span lives in a :mod:`contextvars` variable, so it survives
  the PR 4 thread pool: the executor copies the context into each
  worker submission and into the prefetch producer thread, and child
  spans opened there attach to the right parent. ``span()`` outside
  any trace is a no-op, so library code can annotate phases
  unconditionally. Spans export as a JSON-able dict tree
  (:meth:`Span.to_dict`) for post-hoc analysis.

* :class:`SlowQueryLog` — a bounded, catalog-persisted log of queries
  whose root span exceeded a configurable threshold, each entry
  carrying the SQL text (when the query came through LensQL), the
  parameterized plan fingerprint, the span tree, and the query's
  counter deltas. The clock is injected (``Span(..., clock=...)``)
  so threshold tests never race a real timer.

The Prometheus text renderer (:meth:`MetricsRegistry.render_prometheus`)
is the export surface the future LensQL server will mount at
``/metrics`` unchanged (ROADMAP item 4).
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Span",
    "SlowQueryLog",
    "DEFAULT_SLOW_QUERY_THRESHOLD",
    "current_span",
    "span",
    "trace",
]


# -- instruments --------------------------------------------------------------


class Counter:
    """A monotonically increasing count (float increments allowed, so
    accumulated wall time can ride the same instrument)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        # callers aggregate per batch, so this lock is taken per batch,
        # not per row — and unlike a bare ``+=`` it keeps totals exact
        # under the worker pool
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A value that can move both ways, plus a high-water helper."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    def max_of(self, value: int | float) -> None:
        """Record a high-water mark: keep the larger of value-so-far."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> int | float:
        return self._value


class Histogram:
    """Count/sum plus a bounded sliding sample for p50/p95/p99.

    The sample is a ring of the most recent :attr:`SAMPLE_SIZE`
    observations — memory stays bounded no matter how long the session
    runs, and the quantiles track recent behavior, which is what a
    "how big are coalesced runs lately" question wants.
    """

    SAMPLE_SIZE = 1024

    __slots__ = ("_lock", "count", "total", "_sample", "_next")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total: int | float = 0
        self._sample: list[int | float] = []
        self._next = 0

    def observe(self, value: int | float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if len(self._sample) < self.SAMPLE_SIZE:
                self._sample.append(value)
            else:
                self._sample[self._next] = value
                self._next = (self._next + 1) % self.SAMPLE_SIZE

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the current sample (0 if empty)."""
        with self._lock:
            sample = sorted(self._sample)
        if not sample:
            return 0.0
        rank = min(len(sample) - 1, max(0, round(q * (len(sample) - 1))))
        return float(sample[rank])

    def summary(self) -> dict[str, int | float]:
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NullInstrument:
    """Shared no-op standing in for every instrument of a disabled
    registry — instrumented code calls it unconditionally."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass

    def max_of(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    def labels(self, **label_values: str) -> "_NullInstrument":
        return self

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, int | float]:
        return {"count": 0, "sum": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    @property
    def value(self) -> int:
        return 0

    @property
    def count(self) -> int:
        return 0

    @property
    def total(self) -> int:
        return 0


_NULL = _NullInstrument()

_MAKERS: dict[str, Callable[[], Any]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class Family:
    """A labeled metric: one instrument per distinct label-value tuple."""

    __slots__ = ("name", "kind", "label_names", "_lock", "_children")

    def __init__(self, name: str, kind: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.kind = kind
        self.label_names = label_names
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **label_values: str) -> Any:
        try:
            key = tuple(str(label_values[name]) for name in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"metric {self.name!r} needs labels {self.label_names}"
            ) from exc
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} needs labels {self.label_names}, "
                f"got {sorted(label_values)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, _MAKERS[self.kind]())
        return child

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


def _series_name(
    name: str, label_names: tuple[str, ...], label_values: tuple[str, ...]
) -> str:
    if not label_names:
        return name
    inner = ",".join(
        f'{label}="{value}"' for label, value in zip(label_names, label_values)
    )
    return f"{name}{{{inner}}}"


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - never stored
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# -- the registry -------------------------------------------------------------


class MetricsRegistry:
    """Thread-safe home of every instrument, keyed by metric name.

    ``enabled=False`` builds a registry whose instrument factories all
    return the shared no-op — the A/B baseline the observability
    benchmark measures overhead against.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        #: name -> (kind, help, label_names, instrument-or-family)
        self._metrics: dict[str, tuple[str, str, tuple[str, ...], Any]] = {}

    # -- instrument factories -------------------------------------------

    def _instrument(
        self, kind: str, name: str, help: str, labels: tuple[str, ...]
    ) -> Any:
        if not self.enabled:
            return _NULL
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                known_kind, _, known_labels, instrument = existing
                if known_kind != kind or known_labels != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{known_kind} with labels {known_labels}"
                    )
                return instrument
            instrument = (
                Family(name, kind, labels) if labels else _MAKERS[kind]()
            )
            self._metrics[name] = (kind, help, labels, instrument)
            return instrument

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Any:
        return self._instrument("counter", name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Any:
        return self._instrument("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Any:
        return self._instrument("histogram", name, help, labels)

    # -- export ----------------------------------------------------------

    def _series(self) -> Iterator[tuple[str, str, str, str, Any]]:
        """Yield (kind, help, metric name, series name, instrument)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, (kind, help, label_names, instrument) in metrics:
            if label_names:
                for values, child in instrument.children():
                    yield (
                        kind,
                        help,
                        name,
                        _series_name(name, label_names, values),
                        child,
                    )
            else:
                yield kind, help, name, name, instrument

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A point-in-time copy: plain dicts, safe to hold and diff."""
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for kind, _, _, series, instrument in self._series():
            if kind == "counter":
                out["counters"][series] = instrument.value
            elif kind == "gauge":
                out["gauges"][series] = instrument.value
            else:
                out["histograms"][series] = instrument.summary()
        return out

    def counter_totals(self) -> dict[str, int | float]:
        """Flat counter values — the cheap before/after diff surface."""
        return {
            series: instrument.value
            for kind, _, _, series, instrument in self._series()
            if kind == "counter"
        }

    def render_prometheus(self) -> str:
        """The metrics in Prometheus text exposition format.

        Histograms render as ``summary`` metrics (quantile series plus
        ``_sum``/``_count``), which is what their sliding-sample
        quantiles actually are.
        """
        lines: list[str] = []
        last_name = None
        for kind, help, name, series, instrument in self._series():
            if name != last_name:
                if help:
                    lines.append(f"# HELP {name} {help}")
                prom_type = "summary" if kind == "histogram" else kind
                lines.append(f"# TYPE {name} {prom_type}")
                last_name = name
            if kind == "histogram":
                summary = instrument.summary()
                base, _, labels = series.partition("{")
                labels = labels[:-1]  # strip the trailing "}"
                for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                    quantile_labels = ",".join(
                        part for part in (labels, f'quantile="{q}"') if part
                    )
                    lines.append(
                        f"{base}{{{quantile_labels}}} "
                        f"{_format_value(summary[key])}"
                    )
                lines.append(f"{base}_sum {_format_value(summary['sum'])}")
                lines.append(f"{base}_count {_format_value(summary['count'])}")
            else:
                lines.append(f"{series} {_format_value(instrument.value)}")
        return "\n".join(lines) + "\n" if lines else ""


#: the shared disabled registry — the default for components built
#: without a session (standalone Pager/BlobHeap construction in tests)
NULL_REGISTRY = MetricsRegistry(enabled=False)


# -- tracing spans ------------------------------------------------------------


class Span:
    """One timed phase, with children. Clock injectable for tests."""

    __slots__ = ("name", "attrs", "children", "start", "end", "_clock")

    def __init__(
        self, name: str, *, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = {}
        self.children: list[Span] = []
        self._clock = clock
        self.start = clock()
        self.end: float | None = None

    def child(self, name: str) -> "Span":
        child = Span(name, clock=self._clock)
        self.children.append(child)  # list.append: safe across workers
        return child

    def finish(self) -> None:
        if self.end is None:
            self.end = self._clock()

    @property
    def duration_s(self) -> float:
        end = self.end if self.end is not None else self._clock()
        return end - self.start

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seconds": self.duration_s,
            "children": [child.to_dict() for child in self.children],
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s:.6f}s, {len(self.children)} children)"


_CURRENT_SPAN: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "deeplens_current_span", default=None
)


def current_span() -> Span | None:
    """The innermost active span in this context, or None."""
    return _CURRENT_SPAN.get()


@contextmanager
def trace(
    name: str, *, clock: Callable[[], float] = time.perf_counter
) -> Iterator[Span]:
    """Open a root span and make it current for the dynamic extent."""
    root = Span(name, clock=clock)
    token = _CURRENT_SPAN.set(root)
    try:
        yield root
    finally:
        root.finish()
        _CURRENT_SPAN.reset(token)


@contextmanager
def span(name: str) -> Iterator[Span | None]:
    """Nest a child under the current span; a no-op outside any trace,
    so engine phases annotate themselves unconditionally."""
    parent = _CURRENT_SPAN.get()
    if parent is None:
        yield None
        return
    child = parent.child(name)
    token = _CURRENT_SPAN.set(child)
    try:
        yield child
    finally:
        child.finish()
        _CURRENT_SPAN.reset(token)


# -- the slow-query log -------------------------------------------------------

DEFAULT_SLOW_QUERY_THRESHOLD = 1.0


class SlowQueryLog:
    """Bounded log of queries over the threshold, persisted in the
    catalog (same blob-snapshot idiom as the :class:`PlanQualityLog`).

    Entries carry the SQL text (None for fluent queries), the
    parameterized plan fingerprint, the root span tree, and the
    query's counter deltas. Thresholds compare durations handed in by
    the caller — the log never reads a clock itself, which is what
    makes its threshold behavior exactly testable with fake clocks.
    """

    MAX_ENTRIES = 128

    def __init__(
        self, threshold_seconds: float = DEFAULT_SLOW_QUERY_THRESHOLD
    ) -> None:
        self.threshold_seconds = float(threshold_seconds)
        self._entries: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        #: set on record; cleared by the catalog after each flush
        self.dirty = False

    def record(
        self,
        *,
        sql: str | None,
        fingerprint: str | None,
        seconds: float,
        span: dict[str, Any] | None = None,
        counters: dict[str, int | float] | None = None,
    ) -> bool:
        """Append one entry if ``seconds`` meets the threshold."""
        if seconds < self.threshold_seconds:
            return False
        entry = {
            "sql": sql,
            "fingerprint": fingerprint,
            "seconds": float(seconds),
            "span": span,
            "counters": dict(counters) if counters else {},
        }
        with self._lock:
            self._entries.append(entry)
            del self._entries[: -self.MAX_ENTRIES]
            self.dirty = True
        return True

    def entries(self) -> list[dict[str, Any]]:
        """Copies of the entries, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self._entries.clear()
                self.dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence -----------------------------------------------------

    def to_value(self) -> dict[str, Any]:
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "entries": [dict(entry) for entry in self._entries],
            }

    @classmethod
    def from_value(cls, value: dict[str, Any]) -> "SlowQueryLog":
        log = cls(
            threshold_seconds=value.get(
                "threshold_seconds", DEFAULT_SLOW_QUERY_THRESHOLD
            )
        )
        log._entries = [dict(entry) for entry in value.get("entries", [])]
        return log
