"""Per-collection cardinality statistics that drive the planner.

The paper's optimizer needs "accurately modeling the relationship between
input relation size and operator cost" — but relation size after a filter
is a *cardinality estimation* problem, and the seed planner guessed with
fixed selectivity constants. This module is the statistics layer systems
like Deep Lake and VDMS keep next to the visual data:

* :class:`AttributeStatistics` — one metadata attribute's profile: row
  count, null count, distinct-count estimate (KMV sketch), min/max, an
  equi-depth histogram for numeric values, per-value counts (the
  most-common-values list) for categorical values, and the observed
  dimensionality for vector-valued attributes;
* :class:`CollectionStatistics` — per-collection roll-up (row count, the
  patch-data embedding dimensionality, one ``AttributeStatistics`` per
  metadata key) with predicate-level selectivity estimation over the
  expression DSL;
* :class:`StatisticsProvider` — the protocol the optimizer consumes
  (:class:`~repro.core.catalog.Catalog` implements it).

Statistics are collected **incrementally** at
:meth:`~repro.core.catalog.MaterializedCollection.add` time and persisted
through the catalog's kvstore, so they survive sessions. Every update is
deterministic in insertion order, which makes an incremental build
bit-identical to a from-scratch rebuild over the same rows — the property
the consistency tests pin down.

Estimates carry their *source* so ``explain()`` can say which statistic
backed each decision: ``histogram`` (equi-depth interpolation),
``mcv`` (tracked per-value counts), ``distinct`` (distinct-count
uniformity assumption), or ``fallback-constant`` (no statistics — the
seed planner's fixed guesses).
"""

from __future__ import annotations

import hashlib
import math
import struct
from bisect import bisect_left, insort
from collections import abc as _abc
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.core.expressions import (
    AlwaysTrue,
    And,
    Between,
    Comparison,
    Expr,
    Not,
    Or,
)
from repro.core.patch import LINEAGE_KEY, Patch

#: buckets in the equi-depth histogram for numeric attributes
HISTOGRAM_BUCKETS = 32
#: numeric values retained verbatim before the histogram freezes; until
#: then estimates are computed from an equi-depth histogram over the full
#: sample, after that new values increment frozen bucket counts
MAX_NUMERIC_SAMPLE = 4096
#: distinct values tracked exactly per attribute (the MCV dictionary);
#: later distinct values pool into an "untracked" count estimated via the
#: distinct sketch
MAX_TRACKED_VALUES = 256
#: size of the KMV (k-minimum-values) distinct-count sketch
KMV_SIZE = 128
#: patch-data vectors sampled per collection (first-K — deterministic in
#: insertion order, so incremental collection stays bit-identical to a
#: rebuild) for sampled-distance join-selectivity estimation
DATA_SAMPLE_SIZE = 32
#: coordinates kept per sampled vector; higher-dimensional vectors are
#: subsampled on a fixed stride and distances rescaled by
#: ``sqrt(dim / kept)``
DATA_SAMPLE_MAX_DIM = 256
#: sampled vectors each side needs before the pairwise match fraction is
#: trusted over the geometric-decay constant
MIN_SAMPLE_VECTORS = 8

SOURCE_HISTOGRAM = "histogram"
SOURCE_MCV = "mcv"
SOURCE_DISTINCT = "distinct"
SOURCE_FALLBACK = "fallback-constant"
SOURCE_EXACT = "row-count"
SOURCE_FEEDBACK = "feedback"

#: fixed selectivity guesses used when no statistics exist (the seed
#: planner's constants; ``!=`` gets its own complement rather than being
#: lumped in with ranges)
EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
NEQ_SELECTIVITY = 1.0 - EQ_SELECTIVITY

_HASH_SPACE = float(1 << 64)


@dataclass(frozen=True)
class Estimate:
    """A selectivity estimate plus the statistic that produced it."""

    selectivity: float
    source: str

    def rows(self, n: int) -> float:
        return self.selectivity * n


@runtime_checkable
class StatisticsProvider(Protocol):
    """Anything that can hand the optimizer per-collection statistics."""

    def statistics_for(
        self, collection_name: str
    ) -> "CollectionStatistics | None":
        """Statistics for a collection, or None when none were collected."""
        ...  # pragma: no cover


def _hash64(kind: str, payload: bytes) -> int:
    digest = hashlib.blake2b(
        kind.encode() + b"\x00" + payload, digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _plain(value: Any) -> Any:
    """Normalize a value for counting/serialization: numpy scalars to
    Python, numerics to float (5 and 5.0 are one key), tuples recursively."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    if isinstance(value, tuple):
        return tuple(_plain(item) for item in value)
    return value


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, (bool, np.bool_)
    )


class AttributeStatistics:
    """Incremental profile of one metadata attribute.

    ``count`` is non-null observations; selectivity estimates are
    fractions of those (the collection scales by attribute presence).
    """

    def __init__(self) -> None:
        self.count = 0
        self.null_count = 0
        self.min_value: Any = None
        self.max_value: Any = None
        # numeric sample / frozen equi-depth histogram
        self.numeric_count = 0
        self._numeric_values: list[float] = []
        self.bucket_edges: list[float] | None = None
        self.bucket_counts: list[int] | None = None
        self._hist_cache: tuple[list[float], list[int]] | None = None
        # categorical most-common-values tracking
        self.value_counts: dict[Any, int] = {}
        self.tracked_full = False
        self.untracked_count = 0
        # vector-valued observations (embeddings, bboxes, feature arrays)
        self.vector_count = 0
        self._dim_total = 0
        # KMV distinct sketch: the KMV_SIZE smallest 64-bit value hashes
        self._kmv: list[int] = []
        self._kmv_full = False

    # -- collection -----------------------------------------------------

    def observe(self, value: Any) -> None:
        if value is None:
            self.null_count += 1
            return
        self.count += 1
        if _is_numeric(value):
            v = float(value)
            if math.isnan(v):
                return
            self._kmv_add(_hash64("num", struct.pack("<d", v)))
            self._observe_numeric(v)
            self._count_value(v)
            self._update_minmax(v)
            return
        if isinstance(value, np.ndarray) and value.size:
            self._observe_vector(value)
            return
        if isinstance(value, (list, tuple)) and value and all(
            _is_numeric(item) for item in value
        ):
            self._observe_vector(np.asarray(value, dtype=np.float64))
            return
        plain = _plain(value)
        try:
            self._kmv_add(_hash64("obj", repr(plain).encode()))
            self._count_value(plain)
        except TypeError:  # unhashable oddballs: counted, never estimated
            return
        self._update_minmax(plain)

    def _observe_vector(self, vector: np.ndarray) -> None:
        flat = np.asarray(vector, dtype=np.float64).ravel()
        self.vector_count += 1
        self._dim_total += int(flat.size)
        self._kmv_add(_hash64("vec", flat.tobytes()))

    def _observe_numeric(self, v: float) -> None:
        self.numeric_count += 1
        if self.bucket_edges is not None:  # frozen: bump the right bucket
            edges, counts = self.bucket_edges, self.bucket_counts
            assert counts is not None
            if v < edges[0]:
                edges[0] = v
                counts[0] += 1
            elif v > edges[-1]:
                edges[-1] = v
                counts[-1] += 1
            else:
                counts[bisect_left(edges, v, 1, len(edges) - 1) - 1] += 1
            return
        self._numeric_values.append(v)
        self._hist_cache = None
        if len(self._numeric_values) > MAX_NUMERIC_SAMPLE:
            self.bucket_edges, self.bucket_counts = _equi_depth(
                self._numeric_values
            )
            self._numeric_values = []

    def _count_value(self, plain: Any) -> None:
        if plain in self.value_counts:
            self.value_counts[plain] += 1
        elif not self.tracked_full:
            self.value_counts[plain] = 1
            if len(self.value_counts) >= MAX_TRACKED_VALUES:
                self.tracked_full = True
        else:
            self.untracked_count += 1

    def _update_minmax(self, value: Any) -> None:
        try:
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value
        except TypeError:  # cross-type comparisons: keep the first type
            pass

    def _kmv_add(self, h: int) -> None:
        if self._kmv_full and h >= self._kmv[-1]:
            return
        pos = bisect_left(self._kmv, h)
        if pos < len(self._kmv) and self._kmv[pos] == h:
            return
        insort(self._kmv, h)
        if len(self._kmv) > KMV_SIZE:
            self._kmv.pop()
        self._kmv_full = len(self._kmv) == KMV_SIZE

    # -- derived statistics --------------------------------------------

    @property
    def dim(self) -> int | None:
        """Mean observed dimensionality of vector values, if any."""
        if not self.vector_count:
            return None
        return max(int(round(self._dim_total / self.vector_count)), 1)

    def distinct_estimate(self) -> float:
        """Estimated number of distinct non-null values (KMV sketch)."""
        if not self._kmv:
            return 0.0
        if not self._kmv_full:
            return float(len(self._kmv))
        return (KMV_SIZE - 1) * _HASH_SPACE / float(self._kmv[-1])

    def most_common(self, k: int = 10) -> list[tuple[Any, int]]:
        """The MCV list: up to ``k`` tracked values by descending count."""
        ranked = sorted(
            self.value_counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return ranked[:k]

    def _histogram(self) -> tuple[list[float], list[int]] | None:
        if self.bucket_edges is not None:
            assert self.bucket_counts is not None
            return self.bucket_edges, self.bucket_counts
        if not self._numeric_values:
            return None
        if self._hist_cache is None:
            self._hist_cache = _equi_depth(self._numeric_values)
        return self._hist_cache

    def _all_tracked(self) -> bool:
        """True when every non-null observation lives in value_counts."""
        return (
            not self.tracked_full
            and self.vector_count == 0
            and sum(self.value_counts.values()) == self.count
        )

    # -- estimation ------------------------------------------------------

    def estimate_eq(self, value: Any) -> Estimate | None:
        """Fraction of non-null observations equal to ``value``."""
        if self.count == 0:
            return None
        plain = _plain(value)
        try:
            tracked = plain in self.value_counts
        except TypeError:
            return None
        if tracked:
            return Estimate(self.value_counts[plain] / self.count, SOURCE_MCV)
        if self.tracked_full:
            # uniformity over the distinct values we stopped tracking
            untracked_distinct = max(
                self.distinct_estimate() - len(self.value_counts), 1.0
            )
            return Estimate(
                self.untracked_count / self.count / untracked_distinct,
                SOURCE_DISTINCT,
            )
        if self._all_tracked():
            # we have an exact value dictionary and this value is absent
            return Estimate(0.0, SOURCE_MCV)
        return None

    def estimate_range(self, lo: Any, hi: Any) -> Estimate | None:
        """Fraction of non-null observations with ``lo <= value <= hi``
        (either bound may be None for open)."""
        if self.count == 0:
            return None
        histogram = self._histogram()
        if histogram is not None and _is_boundish(lo) and _is_boundish(hi):
            fraction = _hist_fraction(*histogram, lo, hi)
            return Estimate(
                fraction * self.numeric_count / self.count, SOURCE_HISTOGRAM
            )
        if self._all_tracked():
            matching = 0
            for value, n in self.value_counts.items():
                try:
                    if (lo is None or value >= lo) and (hi is None or value <= hi):
                        matching += n
                except TypeError:
                    return None
            return Estimate(matching / self.count, SOURCE_MCV)
        return None

    def estimate_cmp(self, op: str, value: Any) -> Estimate | None:
        """Estimate one comparison operator against a constant."""
        if op == "==":
            return self.estimate_eq(value)
        if op == "!=":
            eq = self.estimate_eq(value)
            if eq is None:
                return None
            return Estimate(1.0 - eq.selectivity, eq.source)
        if op in ("<", "<="):
            estimate = self.estimate_range(None, value)
            return estimate if op == "<=" else self._strict(estimate, value)
        if op in (">", ">="):
            estimate = self.estimate_range(value, None)
            return estimate if op == ">=" else self._strict(estimate, value)
        if op == "in":
            # sized containers only: a string operand means substring
            # membership (chars are not list members), and list() would
            # consume a one-shot iterator the evaluator still needs
            if isinstance(value, (str, bytes)) or not (
                isinstance(value, _abc.Sized)
                and isinstance(value, (_abc.Container, _abc.Iterable))
            ):
                return None
            items = list(value)
            total, sources = 0.0, []
            for item in items:
                eq = self.estimate_eq(item)
                if eq is None:
                    return None
                total += eq.selectivity
                sources.append(eq.source)
            return Estimate(min(total, 1.0), _combine_sources(sources))
        return None  # contains / opaque ops

    def _strict(self, estimate: Estimate | None, bound: Any) -> Estimate | None:
        """Tighten an inclusive range estimate for a strict bound by
        subtracting the boundary value's own mass when it is tracked."""
        if estimate is None:
            return None
        eq = self.estimate_eq(bound)
        if eq is not None and eq.source == SOURCE_MCV:
            return Estimate(
                max(estimate.selectivity - eq.selectivity, 0.0), estimate.source
            )
        return estimate

    # -- persistence -----------------------------------------------------

    def to_value(self) -> dict:
        """A kvstore-serializable snapshot (plain scalars/lists only)."""
        return {
            "count": self.count,
            "null_count": self.null_count,
            "min": _plain(self.min_value) if self.min_value is not None else None,
            "max": _plain(self.max_value) if self.max_value is not None else None,
            "numeric_count": self.numeric_count,
            "values": list(self._numeric_values)
            if self.bucket_edges is None
            else None,
            "edges": list(self.bucket_edges) if self.bucket_edges else None,
            "buckets": list(self.bucket_counts) if self.bucket_counts else None,
            "value_counts": [
                [key, n] for key, n in self.value_counts.items()
            ],
            "tracked_full": self.tracked_full,
            "untracked_count": self.untracked_count,
            "vector_count": self.vector_count,
            "dim_total": self._dim_total,
            "kmv": list(self._kmv),
        }

    @classmethod
    def from_value(cls, value: dict) -> "AttributeStatistics":
        stats = cls()
        stats.count = value["count"]
        stats.null_count = value["null_count"]
        stats.min_value = value["min"]
        stats.max_value = value["max"]
        stats.numeric_count = value["numeric_count"]
        stats._numeric_values = list(value["values"] or [])
        stats.bucket_edges = list(value["edges"]) if value["edges"] else None
        stats.bucket_counts = list(value["buckets"]) if value["buckets"] else None
        stats.value_counts = {
            _tuplify(key): n for key, n in value["value_counts"]
        }
        stats.tracked_full = value["tracked_full"]
        stats.untracked_count = value["untracked_count"]
        stats.vector_count = value["vector_count"]
        stats._dim_total = value["dim_total"]
        stats._kmv = list(value["kmv"])
        stats._kmv_full = len(stats._kmv) == KMV_SIZE
        return stats


class CollectionStatistics:
    """Roll-up of one materialized collection's statistics."""

    def __init__(self) -> None:
        self.row_count = 0
        self.attrs: dict[str, AttributeStatistics] = {}
        # patch.data profile: the embedding dimensionality similarity
        # joins over default features actually see
        self.data_count = 0
        self._data_dim_total = 0
        # first-K patch-data vectors (original dim, possibly-subsampled
        # coordinates) for sampled pairwise-distance join estimation
        self._data_sample: list[tuple[int, np.ndarray]] = []
        #: mutations since the collection's last full materialization or
        #: statistics rebuild — the catalog stamps this when it serves the
        #: snapshot (it is bookkeeping about the *collection*, not part of
        #: the statistical profile, so it stays out of ``to_value``)
        self.staleness = 0

    # -- collection -----------------------------------------------------

    def observe(self, patch: Patch) -> None:
        """Fold one materialized patch into the statistics."""
        self.row_count += 1
        if patch.data.size:
            self.data_count += 1
            self._data_dim_total += int(patch.data.size)
            if len(self._data_sample) < DATA_SAMPLE_SIZE:
                flat = np.asarray(patch.data, dtype=np.float64).ravel()
                kept = flat
                if flat.size > DATA_SAMPLE_MAX_DIM:
                    stride = np.linspace(
                        0, flat.size - 1, DATA_SAMPLE_MAX_DIM
                    ).astype(np.int64)
                    kept = flat[stride]
                self._data_sample.append((int(flat.size), kept.copy()))
        for key, value in patch.metadata.items():
            if key == LINEAGE_KEY:
                continue
            self.attrs.setdefault(key, AttributeStatistics()).observe(value)

    # -- derived ---------------------------------------------------------

    @property
    def stale(self) -> bool:
        """True when rows were added after the collection was last fully
        materialized (or its statistics rebuilt). Incremental collection
        keeps the profile exact under appends, so this flags *mutation*,
        not error — views built before those appends no longer reflect
        the collection, which is what lineage-driven invalidation keys on.
        """
        return self.staleness > 0

    @property
    def data_dim(self) -> int | None:
        """Mean raveled patch-data size — the recorded embedding dim."""
        if not self.data_count:
            return None
        return max(int(round(self._data_dim_total / self.data_count)), 1)

    def embedding_dim(self, attr: str | None = None) -> int | None:
        """Recorded vector dimensionality: ``attr``'s, or the patch data's."""
        if attr is not None:
            stats = self.attrs.get(attr)
            return stats.dim if stats is not None else None
        return self.data_dim

    def attribute(self, attr: str) -> AttributeStatistics | None:
        return self.attrs.get(attr)

    def data_sample(self) -> list[tuple[int, np.ndarray]]:
        """The recorded patch-data vector sample as ``(original_dim,
        kept_coordinates)`` pairs."""
        return list(self._data_sample)

    # -- estimation ------------------------------------------------------

    def estimate_predicate(self, expr: Expr | None) -> Estimate:
        """Selectivity of ``expr`` over this collection's rows.

        Conjunctions multiply (independence), disjunctions combine via
        inclusion-exclusion under independence, negation complements.
        Leaves without usable statistics fall back to the fixed
        constants, and the estimate's source records it.
        """
        if expr is None or isinstance(expr, AlwaysTrue):
            return Estimate(1.0, SOURCE_EXACT)
        if isinstance(expr, And):
            parts = [self.estimate_predicate(child) for child in expr.children]
            sel = 1.0
            for part in parts:
                sel *= part.selectivity
            return Estimate(sel, _combine_sources([p.source for p in parts]))
        if isinstance(expr, Or):
            parts = [self.estimate_predicate(child) for child in expr.children]
            miss = 1.0
            for part in parts:
                miss *= 1.0 - part.selectivity
            return Estimate(
                1.0 - miss, _combine_sources([p.source for p in parts])
            )
        if isinstance(expr, Not):
            inner = self.estimate_predicate(expr.child)
            return Estimate(_clamp(1.0 - inner.selectivity), inner.source)
        if isinstance(expr, Between):
            return self._leaf_range(expr.attr, expr.lo, expr.hi)
        if isinstance(expr, Comparison):
            return self._leaf_comparison(expr)
        return fallback_estimate(expr)

    def _leaf_comparison(self, expr: Comparison) -> Estimate:
        stats = self.attrs.get(expr.attr)
        if expr.value is None and expr.op in ("==", "!="):
            # null semantics: == None matches absent/null rows
            present = stats.count if stats is not None else 0
            null_fraction = _clamp(
                1.0 - present / self.row_count
            ) if self.row_count else 0.0
            sel = null_fraction if expr.op == "==" else 1.0 - null_fraction
            return Estimate(_clamp(sel), SOURCE_MCV)
        if stats is None:
            return fallback_estimate(expr)
        estimate = stats.estimate_cmp(expr.op, expr.value)
        if estimate is None:
            return fallback_estimate(expr)
        presence = stats.count / self.row_count if self.row_count else 0.0
        sel = estimate.selectivity * presence
        if expr.op == "!=":
            # absent/null rows *match* != (None != constant is True in the
            # evaluator), so they join the complement wholesale
            sel += 1.0 - presence
        return Estimate(_clamp(sel), estimate.source)

    def _leaf_range(self, attr: str, lo: Any, hi: Any) -> Estimate:
        stats = self.attrs.get(attr)
        if stats is None:
            return Estimate(RANGE_SELECTIVITY, SOURCE_FALLBACK)
        estimate = stats.estimate_range(lo, hi)
        if estimate is None:
            return Estimate(RANGE_SELECTIVITY, SOURCE_FALLBACK)
        presence = stats.count / self.row_count if self.row_count else 0.0
        return Estimate(_clamp(estimate.selectivity * presence), estimate.source)

    # -- persistence -----------------------------------------------------

    def to_value(self) -> dict:
        return {
            "row_count": self.row_count,
            "data_count": self.data_count,
            "data_dim_total": self._data_dim_total,
            "data_sample": [
                [dim, [float(x) for x in vec]]
                for dim, vec in self._data_sample
            ],
            "attrs": {
                name: stats.to_value()
                for name, stats in sorted(self.attrs.items())
            },
        }

    @classmethod
    def from_value(cls, value: dict) -> "CollectionStatistics":
        stats = cls()
        stats.row_count = value["row_count"]
        stats.data_count = value["data_count"]
        stats._data_dim_total = value["data_dim_total"]
        # pre-sample snapshots (earlier sessions) simply have no sample
        stats._data_sample = [
            (int(dim), np.asarray(vec, dtype=np.float64))
            for dim, vec in value.get("data_sample", [])
        ]
        stats.attrs = {
            name: AttributeStatistics.from_value(attr_value)
            for name, attr_value in value["attrs"].items()
        }
        return stats


# -- sampled join selectivity --------------------------------------------------


def sample_match_fraction(
    left: list[tuple[int, np.ndarray]],
    right: list[tuple[int, np.ndarray]],
    threshold: float,
    *,
    same: bool = False,
) -> float | None:
    """Fraction of sampled cross pairs within ``threshold`` distance.

    The data-distribution-aware replacement for the geometric-decay
    join-selectivity constant: clustered embeddings match far more often
    than the independence-per-dimension decay predicts, and the recorded
    first-K vector samples (:meth:`CollectionStatistics.data_sample`) see
    exactly that. ``same=True`` excludes identity pairs (self-join
    sampling from one collection). Subsampled vectors rescale distances
    by ``sqrt(dim / kept)`` — the uniform-coordinate estimate of the full
    distance. Returns None (caller keeps the constant) when either
    sample is too small to trust.
    """
    if threshold < 0 or not math.isfinite(threshold):
        return None
    if len(left) < MIN_SAMPLE_VECTORS or len(right) < MIN_SAMPLE_VECTORS:
        return None
    matches = 0
    total = 0
    for i, (left_dim, left_vec) in enumerate(left):
        for j, (right_dim, right_vec) in enumerate(right):
            if same and i == j:
                continue
            if left_vec.size != right_vec.size or not left_vec.size:
                continue
            distance = float(np.linalg.norm(left_vec - right_vec))
            full_dim = max(left_dim, right_dim)
            if full_dim > left_vec.size:
                distance *= math.sqrt(full_dim / left_vec.size)
            total += 1
            if distance <= threshold:
                matches += 1
    if not total:
        return None
    return matches / total


# -- fallback estimation (no statistics) --------------------------------------


def fallback_estimate(expr: Expr | None) -> Estimate:
    """The seed planner's constants, recursively over connectives.

    ``!=`` gets its own complement estimate (``1 - EQ_SELECTIVITY``)
    instead of the old bug of sharing ``RANGE_SELECTIVITY`` with ranges —
    a not-equals predicate keeps almost everything, not 30%.
    """
    return Estimate(_clamp(_fallback_selectivity(expr)), SOURCE_FALLBACK)


def _fallback_selectivity(expr: Expr | None) -> float:
    if expr is None or isinstance(expr, AlwaysTrue):
        return 1.0
    if isinstance(expr, Comparison):
        if expr.op == "==":
            return EQ_SELECTIVITY
        if expr.op == "!=":
            return NEQ_SELECTIVITY
        if expr.op == "in":
            # an IN list is a disjunction of equalities: one equality's
            # worth of selectivity per member, not the range constant.
            # Strings mean substring membership (keep the range
            # constant); unsized containers have unknown member counts;
            # non-containers always evaluate False
            value = expr.value
            if isinstance(value, (str, bytes)):
                return RANGE_SELECTIVITY
            if isinstance(value, _abc.Sized) and isinstance(
                value, (_abc.Container, _abc.Iterable)
            ):
                return min(len(value) * EQ_SELECTIVITY, 1.0)
            if isinstance(value, (_abc.Container, _abc.Iterable)):
                return RANGE_SELECTIVITY
            return 0.0
        return RANGE_SELECTIVITY
    if isinstance(expr, Between):
        return RANGE_SELECTIVITY
    if isinstance(expr, And):
        sel = 1.0
        for child in expr.children:
            sel *= _fallback_selectivity(child)
        return sel
    if isinstance(expr, Or):
        miss = 1.0
        for child in expr.children:
            miss *= 1.0 - _fallback_selectivity(child)
        return 1.0 - miss
    if isinstance(expr, Not):
        return 1.0 - _fallback_selectivity(expr.child)
    return RANGE_SELECTIVITY  # opaque predicates


# -- helpers -------------------------------------------------------------------


def _clamp(selectivity: float) -> float:
    return min(max(selectivity, 0.0), 1.0)


def _combine_sources(sources: list[str]) -> str:
    unique: list[str] = []
    for source in sources:
        for part in source.split("+"):
            if part not in unique:
                unique.append(part)
    return "+".join(unique) if unique else SOURCE_FALLBACK


def _is_boundish(value: Any) -> bool:
    return value is None or _is_numeric(value)


def _tuplify(key: Any) -> Any:
    """Serialized dict keys come back as lists inside pairs; restore
    hashability (tuples stay tuples through the serializer, so this only
    guards nested list decoding)."""
    if isinstance(key, list):
        return tuple(_tuplify(item) for item in key)
    return key


def _equi_depth(values: list[float]) -> tuple[list[float], list[int]]:
    """Equi-depth histogram: ~n/B values per bucket; heavy duplicates
    collapse into zero-width buckets, which estimation treats as exact."""
    data = sorted(values)
    n = len(data)
    n_buckets = min(HISTOGRAM_BUCKETS, n)
    edges = [data[0]]
    counts = []
    previous = 0
    for i in range(1, n_buckets + 1):
        cut = round(i * n / n_buckets)
        edges.append(data[cut - 1])
        counts.append(cut - previous)
        previous = cut
    return edges, counts


def _hist_fraction(
    edges: list[float], counts: list[int], lo: Any, hi: Any
) -> float:
    """Fraction of histogrammed values inside the inclusive range,
    linearly interpolating within partially-covered buckets."""
    total = sum(counts)
    if not total:
        return 0.0
    lo_f = -math.inf if lo is None else float(lo)
    hi_f = math.inf if hi is None else float(hi)
    if hi_f < lo_f:
        return 0.0
    acc = 0.0
    for i, count in enumerate(counts):
        left, right = edges[i], edges[i + 1]
        if right < lo_f or left > hi_f:
            continue
        if right == left:
            acc += count
        else:
            overlap = min(hi_f, right) - max(lo_f, left)
            acc += count * overlap / (right - left)
    return _clamp(acc / total)
