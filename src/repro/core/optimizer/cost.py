"""Cost model for the visual query optimizer (Section 7.4).

"Accurately modeling the relationship between input relation size and
operator cost is crucial for cost-based query optimization." The model
here covers the operators the optimizer chooses between:

* per-patch scan/filter costs;
* all-pairs matching (nested loop over feature distances);
* Ball-tree build and probe, with the **non-linear** size/dimension
  behaviour of Figure 7 — pruning effectiveness decays with dimension, so
  the probed fraction interpolates from logarithmic toward linear;
* hash/B+ lookups;
* device placement costs (delegated to the backend specs of
  :mod:`repro.vision.backends.device`).

Constants are seconds on the reference machine; :meth:`CostModel.calibrate`
re-fits the hot ones by timing micro-workloads, the pragmatic answer to
"a noisy and analytically complex cost model".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.indexes import BallTree


@dataclass
class CostModel:
    """Analytic operator costs in seconds."""

    #: fixed cost to produce one patch from a scan
    scan_per_patch: float = 4e-5
    #: predicate evaluation per patch
    filter_per_patch: float = 1.5e-6
    #: one UDF/model invocation per patch (inference dominates scans by
    #: orders of magnitude — the asymmetry materialized views exploit)
    udf_per_patch: float = 1.0e-3
    #: one feature-distance comparison of dimension d costs dist_base + d*dist_per_dim
    dist_base: float = 1.2e-6
    dist_per_dim: float = 2.5e-8
    #: Ball-tree build: build_per_point * n * log2(n) * (1 + dim * build_dim_factor)
    build_per_point: float = 1.0e-6
    build_dim_factor: float = 0.02
    #: Ball-tree probe visits ~ n**alpha(dim) candidates
    probe_alpha_low: float = 0.35
    probe_alpha_slope: float = 0.011
    #: hash/B+ index point lookup
    index_lookup: float = 1.2e-4
    #: per-result fetch from the heap
    fetch_per_patch: float = 1.2e-4
    #: producing one data-less patch from the columnar metadata segment
    #: (bulk column decode, no pixel decompression — far under
    #: ``scan_per_patch``, which pays the full record)
    metadata_scan_per_patch: float = 4e-6

    calibrated: bool = field(default=False, repr=False)

    # -- scans / filters --------------------------------------------------

    def full_scan(self, n: int) -> float:
        return n * (self.scan_per_patch + self.filter_per_patch)

    def metadata_scan(self, n: float) -> float:
        """Metadata-only scan over ``n`` rows of the columnar segment."""
        return n * (self.metadata_scan_per_patch + self.filter_per_patch)

    def udf_map(self, n: float) -> float:
        """Applying a UDF map over ``n`` rows (model inference)."""
        return n * self.udf_per_patch

    def index_point_lookup(self, expected_results: float) -> float:
        return self.index_lookup + expected_results * self.fetch_per_patch

    def index_range_scan(self, expected_results: float) -> float:
        return self.index_lookup + expected_results * (
            self.fetch_per_patch + self.filter_per_patch
        )

    # -- matching ------------------------------------------------------------

    def pair_distance(self, dim: int) -> float:
        return self.dist_base + dim * self.dist_per_dim

    def nested_loop_join(self, n_left: int, n_right: int, dim: int) -> float:
        return n_left * n_right * self.pair_distance(dim)

    def probe_alpha(self, dim: int) -> float:
        """Exponent of the probed fraction: ~log-like in low dim, toward
        linear in high dim (the curse of dimensionality)."""
        return float(min(1.0, self.probe_alpha_low + self.probe_alpha_slope * dim))

    def balltree_build(self, n: int, dim: int) -> float:
        if n <= 1:
            return self.build_per_point
        return (
            self.build_per_point
            * n
            * np.log2(max(n, 2))
            * (1.0 + dim * self.build_dim_factor)
        )

    def balltree_probe(self, n_indexed: int, dim: int) -> float:
        visited = max(n_indexed, 2) ** self.probe_alpha(dim)
        return visited * self.pair_distance(dim)

    def balltree_join(
        self, n_probe: int, n_indexed: int, dim: int, *, prebuilt: bool = False
    ) -> float:
        build = 0.0 if prebuilt else self.balltree_build(n_indexed, dim)
        return build + n_probe * self.balltree_probe(n_indexed, dim)

    # -- approximate nearest neighbor (HNSW) ------------------------------

    def hnsw_probe(self, n_indexed: int, dim: int, ef: int) -> float:
        """One HNSW beam search: ~``ef * log2(n)`` distance evaluations —
        the logarithmic shape that stays flat where Ball-tree pruning
        collapses (``probe_alpha`` -> 1) in high dimensions."""
        visited = max(float(ef), 1.0) * np.log2(max(n_indexed, 2))
        return visited * self.pair_distance(dim)

    def hnsw_build(self, n: int, dim: int, m: int, ef_construction: int) -> float:
        """Graph construction: every insert runs one probe at
        ``ef_construction`` plus ``m`` neighbor re-prunes."""
        per_insert = self.hnsw_probe(max(n, 2), dim, ef_construction)
        per_insert += m * self.pair_distance(dim)
        return n * per_insert

    # -- calibration ----------------------------------------------------

    def calibrate(self, *, seed: int = 0) -> "CostModel":
        """Re-fit distance/build/probe constants from micro-measurements."""
        rng = np.random.default_rng(seed)
        # pairwise distance throughput at a reference dimension
        dim = 32
        left = rng.normal(size=(200, dim))
        right = rng.normal(size=(200, dim))
        started = time.perf_counter()
        for row in left:
            np.sqrt(((right - row) ** 2).sum(axis=1))
        per_pair = (time.perf_counter() - started) / (200 * 200)
        self.dist_per_dim = per_pair / (2 * dim)
        self.dist_base = per_pair / 2
        # build cost at a reference size
        points = rng.normal(size=(2000, dim))
        started = time.perf_counter()
        tree = BallTree(points, leaf_size=16)
        build_seconds = time.perf_counter() - started
        self.build_per_point = build_seconds / (
            2000 * np.log2(2000) * (1.0 + dim * self.build_dim_factor)
        )
        # probe cost fixes the alpha intercept at this dimension
        queries = rng.normal(size=(100, dim))
        started = time.perf_counter()
        for query in queries:
            tree.query_radius(query, 0.5)
        probe_seconds = (time.perf_counter() - started) / 100
        visited = probe_seconds / self.pair_distance(dim)
        alpha = float(np.log(max(visited, 2.0)) / np.log(2000))
        self.probe_alpha_low = max(alpha - self.probe_alpha_slope * dim, 0.05)
        self.calibrated = True
        return self
