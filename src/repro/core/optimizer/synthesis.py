"""Pipeline synthesis (Section 4 *Future Work*, implemented).

"We envision a system that scores each model with a precision/recall
profile for a desired dataset, and can choose the model that is most
appropriate for a query." The synthesizer searches a typed component
library for the cheapest pipeline that provides a set of required
metadata fields subject to accuracy constraints:

* each :class:`ComponentSpec` declares what fields it ``requires`` and
  ``provides``, its per-item latency, and its recall/precision profile;
* synthesis is Dijkstra over provided-field states: the frontier state is
  the frozenset of fields available so far, edge weights are latency, and
  pipeline recall is the product of stage recalls;
* interchangeable detectors (a general model vs a cheap special-case one)
  become alternative edges, and the accuracy constraint decides — exactly
  the paper's example of choosing between "general purpose pre-trained
  object detection models and some special case programmed models".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dc_field
from typing import Callable

from repro.errors import OptimizerError
from repro.etl.pipeline import Pipeline, Stage


@dataclass(frozen=True)
class ComponentSpec:
    """One library entry: a typed, profiled pipeline stage."""

    name: str
    factory: Callable[[], Stage]
    provides: frozenset[str]
    requires: frozenset[str] = dc_field(default_factory=frozenset)
    latency_per_item: float = 1e-3
    recall: float = 1.0
    precision: float = 1.0

    def __post_init__(self) -> None:
        if not self.provides:
            raise OptimizerError(f"component {self.name!r} provides nothing")
        if not 0 < self.recall <= 1 or not 0 < self.precision <= 1:
            raise OptimizerError(
                f"component {self.name!r} has invalid accuracy profile "
                f"(recall={self.recall}, precision={self.precision})"
            )


@dataclass(frozen=True)
class SynthesisResult:
    """A synthesized pipeline with its predicted profile."""

    components: tuple[ComponentSpec, ...]
    latency_per_item: float
    recall: float
    precision: float

    def build(self) -> Pipeline:
        return Pipeline([component.factory() for component in self.components])

    def describe(self) -> str:
        chain = " | ".join(component.name for component in self.components)
        return (
            f"{chain}  (latency/item={self.latency_per_item:.4g}s, "
            f"R={self.recall:.3f}, P={self.precision:.3f})"
        )


class PipelineSynthesizer:
    """Search a component library for a pipeline meeting a request."""

    def __init__(self, library: list[ComponentSpec]) -> None:
        if not library:
            raise OptimizerError("the component library is empty")
        self.library = list(library)

    def synthesize(
        self,
        required_fields: set[str],
        *,
        min_recall: float = 0.0,
        min_precision: float = 0.0,
        initial_fields: set[str] | None = None,
    ) -> SynthesisResult:
        """Cheapest pipeline providing ``required_fields`` within constraints.

        Raises :class:`OptimizerError` when no composition satisfies the
        request — including the case where a pipeline *exists* but only
        below the accuracy floor, which is reported distinctly.
        """
        target = frozenset(required_fields)
        start = frozenset(initial_fields or {"pixels"})
        # Dijkstra over (fields, recall, precision) states; recall/precision
        # only shrink, so dominated states are pruned on (fields, >=recall).
        heap: list[tuple[float, int, frozenset, float, float, tuple]] = [
            (0.0, 0, start, 1.0, 1.0, ())
        ]
        best_seen: dict[frozenset, list[tuple[float, float, float]]] = {}
        tie = 0
        found_below_accuracy = False
        while heap:
            latency, _, fields, recall, precision, chain = heapq.heappop(heap)
            if target <= fields:
                if recall >= min_recall and precision >= min_precision:
                    return SynthesisResult(
                        components=chain,
                        latency_per_item=latency,
                        recall=recall,
                        precision=precision,
                    )
                found_below_accuracy = True
                continue
            dominated = False
            for seen_latency, seen_recall, seen_precision in best_seen.get(fields, []):
                if (
                    seen_latency <= latency
                    and seen_recall >= recall
                    and seen_precision >= precision
                ):
                    dominated = True
                    break
            if dominated:
                continue
            best_seen.setdefault(fields, []).append((latency, recall, precision))
            for component in self.library:
                if not component.requires <= fields:
                    continue
                if component.provides <= fields:
                    continue  # nothing new
                tie += 1
                heapq.heappush(
                    heap,
                    (
                        latency + component.latency_per_item,
                        tie,
                        fields | component.provides,
                        recall * component.recall,
                        precision * component.precision,
                        chain + (component,),
                    ),
                )
        if found_below_accuracy:
            raise OptimizerError(
                f"pipelines providing {sorted(target)} exist but none meets "
                f"recall >= {min_recall} and precision >= {min_precision}"
            )
        raise OptimizerError(
            f"no composition of the library provides {sorted(target)}"
        )
