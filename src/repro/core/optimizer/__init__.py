"""Query optimization: cost model, planner, storage advisor, synthesis."""

from repro.core.optimizer.advisor import (
    LayoutCosts,
    StorageAdvisor,
    StorageRecommendation,
    WorkloadProfile,
)
from repro.core.optimizer.cost import CostModel
from repro.core.optimizer.lowering import (
    AggregateExecution,
    UDFCache,
    plan_pipeline,
)
from repro.core.optimizer.optimizer import (
    Explanation,
    Optimizer,
    PlanAccuracy,
    PlanChoice,
)
from repro.core.optimizer.rewriter import AppliedRewrite, rewrite
from repro.core.optimizer.synthesis import (
    ComponentSpec,
    PipelineSynthesizer,
    SynthesisResult,
)

__all__ = [
    "AggregateExecution",
    "AppliedRewrite",
    "ComponentSpec",
    "CostModel",
    "Explanation",
    "LayoutCosts",
    "Optimizer",
    "PipelineSynthesizer",
    "PlanAccuracy",
    "PlanChoice",
    "StorageAdvisor",
    "StorageRecommendation",
    "SynthesisResult",
    "UDFCache",
    "WorkloadProfile",
    "plan_pipeline",
    "rewrite",
]
