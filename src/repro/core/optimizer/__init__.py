"""Query optimization: cost model, planner, storage advisor, synthesis."""

from repro.core.optimizer.advisor import (
    LayoutCosts,
    StorageAdvisor,
    StorageRecommendation,
    WorkloadProfile,
)
from repro.core.optimizer.cost import CostModel
from repro.core.optimizer.optimizer import (
    Explanation,
    Optimizer,
    PlanAccuracy,
    PlanChoice,
)
from repro.core.optimizer.synthesis import (
    ComponentSpec,
    PipelineSynthesizer,
    SynthesisResult,
)

__all__ = [
    "ComponentSpec",
    "CostModel",
    "Explanation",
    "LayoutCosts",
    "Optimizer",
    "PipelineSynthesizer",
    "PlanAccuracy",
    "PlanChoice",
    "StorageAdvisor",
    "StorageRecommendation",
    "SynthesisResult",
    "WorkloadProfile",
]
