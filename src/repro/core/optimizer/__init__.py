"""Query optimization: cost model, planner, storage advisor, synthesis."""

from repro.core.optimizer.advisor import (
    LayoutCosts,
    StorageAdvisor,
    StorageRecommendation,
    WorkloadProfile,
)
from repro.core.optimizer.cost import CostModel
from repro.core.optimizer.lowering import (
    DEFAULT_JOIN_DIM,
    JOIN_PER_DIM_MATCH,
    AggregateExecution,
    UDFCache,
    ViewMatcher,
    estimate_join_output,
    estimate_plan_rows,
    join_dim,
    plan_pipeline,
)
from repro.core.optimizer.optimizer import (
    EQ_SELECTIVITY,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    Explanation,
    Optimizer,
    PlanAccuracy,
    PlanChoice,
)
from repro.core.optimizer.rewriter import AppliedRewrite, rewrite
from repro.core.optimizer.synthesis import (
    ComponentSpec,
    PipelineSynthesizer,
    SynthesisResult,
)

__all__ = [
    "AggregateExecution",
    "AppliedRewrite",
    "ComponentSpec",
    "CostModel",
    "DEFAULT_JOIN_DIM",
    "EQ_SELECTIVITY",
    "Explanation",
    "JOIN_PER_DIM_MATCH",
    "LayoutCosts",
    "NEQ_SELECTIVITY",
    "Optimizer",
    "PipelineSynthesizer",
    "PlanAccuracy",
    "PlanChoice",
    "RANGE_SELECTIVITY",
    "StorageAdvisor",
    "StorageRecommendation",
    "SynthesisResult",
    "UDFCache",
    "ViewMatcher",
    "WorkloadProfile",
    "estimate_join_output",
    "estimate_plan_rows",
    "join_dim",
    "plan_pipeline",
    "rewrite",
]
