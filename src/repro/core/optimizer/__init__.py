"""Query optimization: cost model, planner, storage advisor, synthesis."""

from repro.core.optimizer.advisor import (
    LayoutCosts,
    StorageAdvisor,
    StorageRecommendation,
    WorkloadProfile,
)
from repro.core.optimizer.cost import CostModel
from repro.core.optimizer.lowering import (
    DEFAULT_JOIN_DIM,
    AggregateExecution,
    UDFCache,
    estimate_plan_rows,
    plan_pipeline,
)
from repro.core.optimizer.optimizer import (
    EQ_SELECTIVITY,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    Explanation,
    Optimizer,
    PlanAccuracy,
    PlanChoice,
)
from repro.core.optimizer.rewriter import AppliedRewrite, rewrite
from repro.core.optimizer.synthesis import (
    ComponentSpec,
    PipelineSynthesizer,
    SynthesisResult,
)

__all__ = [
    "AggregateExecution",
    "AppliedRewrite",
    "ComponentSpec",
    "CostModel",
    "DEFAULT_JOIN_DIM",
    "EQ_SELECTIVITY",
    "Explanation",
    "LayoutCosts",
    "NEQ_SELECTIVITY",
    "Optimizer",
    "PipelineSynthesizer",
    "PlanAccuracy",
    "PlanChoice",
    "RANGE_SELECTIVITY",
    "StorageAdvisor",
    "StorageRecommendation",
    "SynthesisResult",
    "UDFCache",
    "WorkloadProfile",
    "estimate_plan_rows",
    "plan_pipeline",
    "rewrite",
]
