"""Storage advisor (Section 3 *Future Work*, implemented).

"In the future, we would like to have a storage advisor that can analyze a
workload or an SLO and return an optimized storage scheme." This module
implements that advisor over the three layouts:

* expected **storage** per layout from measured codec ratios;
* expected **query latency** from decode throughput and each layout's
  push-down granularity (Frame: exact; Segmented: clip-rounded; Encoded:
  prefix scan to the end of the range);
* the Segmented clip length is optimized in closed form: storage overhead
  falls as clips grow (fewer I-frames) while wasted decode per selective
  query grows, so the advisor minimizes the weighted sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizerError


@dataclass(frozen=True)
class WorkloadProfile:
    """What the advisor needs to know about the workload."""

    n_frames: int
    frame_bytes: int  # raw size of one decoded frame
    #: average fraction of the video touched per query (temporal selectivity)
    temporal_selectivity: float
    #: how many queries amortize one ingest
    queries_per_ingest: float = 10.0
    #: hard cap on stored bytes (None = unconstrained)
    storage_budget_bytes: int | None = None
    #: True when downstream models are sensitive to compression artifacts
    accuracy_sensitive: bool = False


@dataclass(frozen=True)
class LayoutCosts:
    """Calibration constants measured from the codecs."""

    #: size ratios vs RAW (calibrated on the TrafficCam benchmark at
    #: high quality; see benchmarks/bench_ablation_advisor.py)
    jpeg_ratio: float = 0.15
    h264_p_ratio: float = 0.035  # P-frame bytes / raw bytes
    h264_i_ratio: float = 0.12  # I-frame bytes / raw bytes
    #: decode seconds per raw frame byte
    decode_jpeg_per_byte: float = 6e-9
    decode_h264_per_byte: float = 7e-9
    read_raw_per_byte: float = 1.5e-9


@dataclass(frozen=True)
class StorageRecommendation:
    layout: str
    clip_len: int | None
    quality: str
    expected_size_bytes: float
    expected_query_seconds: float
    rationale: str


class StorageAdvisor:
    """Pick a physical layout for a video workload."""

    def __init__(self, costs: LayoutCosts | None = None) -> None:
        self.costs = costs or LayoutCosts()

    def advise(self, workload: WorkloadProfile) -> StorageRecommendation:
        if workload.n_frames < 1:
            raise OptimizerError("workload must have at least one frame")
        if not 0 < workload.temporal_selectivity <= 1:
            raise OptimizerError(
                f"temporal_selectivity must be in (0, 1], got "
                f"{workload.temporal_selectivity}"
            )
        candidates = [
            self._frame_raw(workload),
            self._frame_jpeg(workload),
            self._encoded(workload),
            self._segmented(workload),
        ]
        feasible = [
            candidate
            for candidate in candidates
            if workload.storage_budget_bytes is None
            or candidate.expected_size_bytes <= workload.storage_budget_bytes
        ]
        if not feasible:
            raise OptimizerError(
                f"no layout fits the storage budget of "
                f"{workload.storage_budget_bytes} bytes; the smallest candidate "
                f"needs {min(c.expected_size_bytes for c in candidates):.0f}"
            )
        return min(feasible, key=lambda c: c.expected_query_seconds)

    # -- per-layout models --------------------------------------------------

    def _quality(self, workload: WorkloadProfile) -> str:
        return "high" if workload.accuracy_sensitive else "medium"

    def _frame_raw(self, workload: WorkloadProfile) -> StorageRecommendation:
        size = workload.n_frames * workload.frame_bytes
        touched = workload.n_frames * workload.temporal_selectivity
        seconds = touched * workload.frame_bytes * self.costs.read_raw_per_byte
        return StorageRecommendation(
            layout="frame-raw",
            clip_len=None,
            quality="lossless",
            expected_size_bytes=size,
            expected_query_seconds=seconds,
            rationale="exact push-down, no decode cost, maximum storage",
        )

    def _frame_jpeg(self, workload: WorkloadProfile) -> StorageRecommendation:
        size = workload.n_frames * workload.frame_bytes * self.costs.jpeg_ratio
        touched = workload.n_frames * workload.temporal_selectivity
        seconds = touched * workload.frame_bytes * self.costs.decode_jpeg_per_byte
        return StorageRecommendation(
            layout="frame-jpeg",
            clip_len=None,
            quality=self._quality(workload),
            expected_size_bytes=size,
            expected_query_seconds=seconds,
            rationale="exact push-down with intra-frame compression",
        )

    def _encoded(self, workload: WorkloadProfile) -> StorageRecommendation:
        size = workload.n_frames * workload.frame_bytes * self.costs.h264_p_ratio
        # sequential: a query ending at the middle of the video on average
        # decodes half of it regardless of selectivity
        prefix = workload.n_frames * min(workload.temporal_selectivity + 0.5, 1.0)
        seconds = prefix * workload.frame_bytes * self.costs.decode_h264_per_byte
        return StorageRecommendation(
            layout="encoded",
            clip_len=None,
            quality=self._quality(workload),
            expected_size_bytes=size,
            expected_query_seconds=seconds,
            rationale="best compression; every temporal query pays a prefix scan",
        )

    def _segmented(self, workload: WorkloadProfile) -> StorageRecommendation:
        clip_len = self.optimal_clip_len(workload)
        n_clips = np.ceil(workload.n_frames / clip_len)
        size = workload.frame_bytes * (
            n_clips * self.costs.h264_i_ratio
            + (workload.n_frames - n_clips) * self.costs.h264_p_ratio
        )
        touched = workload.n_frames * workload.temporal_selectivity + clip_len
        seconds = touched * workload.frame_bytes * self.costs.decode_h264_per_byte
        return StorageRecommendation(
            layout="segmented",
            clip_len=clip_len,
            quality=self._quality(workload),
            expected_size_bytes=size,
            expected_query_seconds=seconds,
            rationale=(
                f"clip-granular push-down with inter-frame compression; "
                f"clip_len={clip_len} balances I-frame overhead against "
                f"boundary decode waste"
            ),
        )

    def optimal_clip_len(self, workload: WorkloadProfile) -> int:
        """Closed-form clip length for the Segmented layout.

        Storage overhead of clips: ``n/L * (i_ratio - p_ratio) * frame_bytes``
        (one I-frame per clip). Query waste: up to one extra clip decoded
        per query, ``queries * L * decode_cost``. The weighted sum is
        minimized at ``L* = sqrt(storage_weight * n * delta_i / query_cost)``.
        """
        delta_i = (
            (self.costs.h264_i_ratio - self.costs.h264_p_ratio)
            * workload.frame_bytes
        )
        # one byte stored ~ read once per query amortization
        storage_weight = self.costs.decode_h264_per_byte * max(
            workload.queries_per_ingest, 1.0
        )
        query_waste = (
            max(workload.queries_per_ingest, 1.0)
            * workload.frame_bytes
            * self.costs.decode_h264_per_byte
        )
        optimal = np.sqrt(
            storage_weight * workload.n_frames * delta_i / max(query_waste, 1e-18)
        )
        return int(np.clip(optimal, 4, max(workload.n_frames, 4)))
