"""Rule-based logical plan rewriter.

Each rule is a local transformation on one node (and its immediate
children); :func:`rewrite` applies the rule set bottom-up until fixpoint
and returns both the rewritten tree and a trace of every applied rewrite,
which :meth:`QueryBuilder.explain` surfaces next to the physical plan
candidates.

The rule menu (the logical half of DeepLens Section 5 / EVA's optimizer):

* ``split-filter-conjuncts`` — an AND-of-conjuncts filter becomes a chain
  of single-conjunct filters so each conjunct can move independently;
* ``pushdown-filter-below-map`` — a filter whose attributes are disjoint
  from a map UDF's declared outputs commutes below the map, so the (cheap)
  predicate prunes rows before the (expensive) inference runs;
* ``pushdown-limit`` — limits slide below projections and one-to-one maps,
  and adjacent limits collapse to the tighter bound;
* ``ann-topk`` — ``Limit(k)`` over ``OrderBy(similarity to a query
  vector)`` collapses into the :class:`~repro.core.logical.AnnTopK`
  node, unlocking index-backed (HNSW / BallTree) access paths instead
  of a full scan-and-sort.

(``cache=True`` maps are memoized at lowering time, where each map node
is visited exactly once; lowering records that in the explain trace.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.expressions import And
from repro.core.logical import (
    AnnTopK,
    Filter,
    Limit,
    LogicalPlan,
    Map,
    OrderBy,
    Project,
    expr_attrs,
)

#: safety bound on rewrite passes (each pass walks the whole tree)
MAX_PASSES = 32


@dataclass(frozen=True)
class AppliedRewrite:
    """One rewrite the planner performed, for explain() output."""

    rule: str
    description: str

    def __str__(self) -> str:
        return f"{self.rule}: {self.description}"


def rewrite(plan: LogicalPlan) -> tuple[LogicalPlan, list[AppliedRewrite]]:
    """Apply the rule set to fixpoint; returns (new plan, trace)."""
    trace: list[AppliedRewrite] = []
    for _ in range(MAX_PASSES):
        plan, changed = _rewrite_once(plan, trace)
        if not changed:
            break
    return plan, trace


def _rewrite_once(
    plan: LogicalPlan, trace: list[AppliedRewrite]
) -> tuple[LogicalPlan, bool]:
    """One bottom-up pass; returns (possibly new node, anything changed)."""
    changed = False
    new_children = []
    for child in plan.children():
        new_child, child_changed = _rewrite_once(child, trace)
        new_children.append(new_child)
        changed = changed or child_changed
    if changed:
        plan = plan.with_children(*new_children)
    for rule in (
        _split_filter,
        _pushdown_filter,
        _pushdown_limit,
        _merge_limits,
        _ann_topk,
    ):
        rewritten = rule(plan, trace)
        if rewritten is not None:
            return rewritten, True
    return plan, changed


def _split_filter(
    plan: LogicalPlan, trace: list[AppliedRewrite]
) -> LogicalPlan | None:
    if not (isinstance(plan, Filter) and isinstance(plan.expr, And)):
        return None
    conjuncts = plan.expr.conjuncts()
    node = plan.child
    # stack so the first conjunct ends up evaluated first (innermost)
    for conjunct in conjuncts:
        node = Filter(node, conjunct, on=plan.on)
    trace.append(
        AppliedRewrite(
            "split-filter-conjuncts",
            f"split {plan.expr!r} into {len(conjuncts)} single-conjunct filters",
        )
    )
    return node


def _pushdown_filter(
    plan: LogicalPlan, trace: list[AppliedRewrite]
) -> LogicalPlan | None:
    if not (
        isinstance(plan, Filter) and plan.on == 0 and isinstance(plan.child, Map)
    ):
        return None
    map_node = plan.child
    attrs = expr_attrs(plan.expr)
    if attrs is None or map_node.provides is None or attrs & map_node.provides:
        # opaque predicate, a UDF with undeclared outputs, or a
        # predicate reading the UDF's outputs: pushing down would be
        # unsound, keep the filter above the map
        return None
    trace.append(
        AppliedRewrite(
            "pushdown-filter-below-map",
            f"pushed {plan.expr!r} below map {map_node.name!r} "
            f"(predicate does not read its outputs)",
        )
    )
    return replace(map_node, child=Filter(map_node.child, plan.expr))


def _pushdown_limit(
    plan: LogicalPlan, trace: list[AppliedRewrite]
) -> LogicalPlan | None:
    if not isinstance(plan, Limit):
        return None
    child = plan.child
    if isinstance(child, Project):
        inner: LogicalPlan = Limit(child.child, plan.n)
        trace.append(
            AppliedRewrite(
                "pushdown-limit", f"pushed limit {plan.n} below projection"
            )
        )
        return replace(child, child=inner)
    if isinstance(child, Map) and child.one_to_one:
        inner = Limit(child.child, plan.n)
        trace.append(
            AppliedRewrite(
                "pushdown-limit",
                f"pushed limit {plan.n} below one-to-one map {child.name!r}",
            )
        )
        return replace(child, child=inner)
    return None


def _ann_topk(
    plan: LogicalPlan, trace: list[AppliedRewrite]
) -> LogicalPlan | None:
    """``Limit(k)`` over ``OrderBy(similarity)`` is the top-k similarity
    pattern: collapse it so lowering can pick an ANN access path."""
    if not (
        isinstance(plan, Limit)
        and isinstance(plan.child, OrderBy)
        and plan.child.vector is not None
        and not plan.child.reverse
        and plan.n > 0
    ):
        return None
    order = plan.child
    trace.append(
        AppliedRewrite(
            "ann-topk",
            f"collapsed ORDER BY similarity LIMIT {plan.n} into a top-{plan.n} "
            f"similarity search on {order.vector_attr!r}",
        )
    )
    return AnnTopK(order.child, order.vector_attr or "data", order.vector, plan.n)


def _merge_limits(
    plan: LogicalPlan, trace: list[AppliedRewrite]
) -> LogicalPlan | None:
    if not (isinstance(plan, Limit) and isinstance(plan.child, Limit)):
        return None
    tighter = min(plan.n, plan.child.n)
    trace.append(
        AppliedRewrite(
            "merge-limits",
            f"collapsed limits {plan.n} and {plan.child.n} to {tighter}",
        )
    )
    return Limit(plan.child.child, tighter)


