"""Lowering: logical plan -> physical operators.

:func:`plan_pipeline` is the planner entry point the
:class:`~repro.core.session.QueryBuilder` uses — it rewrites the logical
tree (:mod:`repro.core.optimizer.rewriter`), lowers every node to the
physical operators of :mod:`repro.core.operators`, and merges the
cost-based decisions made along the way (access-path selection for each
scan+filter group, join-strategy selection for similarity joins) into one
:class:`~repro.core.optimizer.Explanation` that also carries the applied
logical rewrites.
"""

from __future__ import annotations

import copy
import hashlib
import threading

from dataclasses import dataclass, replace
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.core import logical
from repro.core.executor import (
    ExecutionContext,
    PrefetchBatches,
    resolve_execution,
)
from repro.core.expressions import And, Expr
from repro.core.metrics import NULL_REGISTRY, span
from repro.core.operators import (
    DEFAULT_BATCH_SIZE,
    AnnTopKExact,
    AnnTopKScan,
    BallTreeSimilarityJoin,
    CollectionScan,
    DistinctCount,
    GroupBy,
    IndexLookupScan,
    IndexRangeScan,
    InputProbe,
    IteratorScan,
    Limit,
    MapPatches,
    MetadataScan,
    NestedLoopJoin,
    Operator,
    OrderBy,
    ProfiledOperator,
    Project,
    Select,
    SwapSides,
)
from repro.core.optimizer.optimizer import (
    Explanation,
    Optimizer,
    PlanChoice,
)
from repro.core.optimizer.rewriter import rewrite
from repro.core.patch import LINEAGE_KEY, Patch
from repro.core.profile import OperatorProfile
from repro.core.udf import AttributeKey
from repro.core.statistics import fallback_estimate, sample_match_fraction
from repro.errors import QueryError

#: feature dimensionality assumed for join costing when the caller gives
#: no ``dim`` and the statistics recorded no embedding dimensionality
#: (vectors are opaque callables until execution)
DEFAULT_JOIN_DIM = 8

#: per-dimension probability that two random feature vectors fall within
#: the join threshold along that axis — the similarity-join output model:
#: match probability decays geometrically with dimensionality (the same
#: concentration-of-measure effect behind the Ball-tree cost model's
#: alpha), floored at one near-duplicate match per probe
JOIN_PER_DIM_MATCH = 0.5
#: dimensions beyond this contribute no further decay (the floor has
#: long since taken over; avoids pointless underflow)
JOIN_MATCH_DIM_CAP = 32


def estimate_join_output(
    n_left: float,
    n_right: float,
    dim: int,
    *,
    exclude_self: bool = False,
    match_fraction: float | None = None,
) -> float:
    """Estimated output pairs of a similarity join.

    With ``match_fraction`` (the sampled fraction of pairwise distances
    within the join threshold, from the recorded vector statistics) each
    left row matches ``n_right * match_fraction`` right rows — the
    data-distribution-aware model, which sees clustering the geometric
    decay cannot. Identity-pair handling is the *sampler's* job there
    (:func:`~repro.core.statistics.sample_match_fraction` with ``same=``),
    so no further ``exclude_self`` subtraction applies.

    Without it, each left row matches ``n_right * JOIN_PER_DIM_MATCH **
    dim`` right rows under the independence model. Both paths floor at
    one match per probe — similarity joins exist because near-duplicates
    *do* exist, so a high-dimensional join degrades to ~one partner per
    row rather than zero. ``exclude_self`` removes the identity pairs a
    self-join of the same rows would otherwise count.
    """
    if n_left <= 0 or n_right <= 0:
        return 0.0  # the floor must not conjure matches from an empty side
    if match_fraction is not None:
        per_probe = n_right * min(max(match_fraction, 0.0), 1.0)
        return n_left * min(max(per_probe, 1.0), max(n_right, 1.0))
    per_probe = n_right * JOIN_PER_DIM_MATCH ** min(max(dim, 1), JOIN_MATCH_DIM_CAP)
    matches = n_left * min(max(per_probe, 1.0), max(n_right, 1.0))
    if exclude_self:
        matches = max(matches - min(n_left, n_right), 0.0)
    return matches


@runtime_checkable
class ViewMatcher(Protocol):
    """The planner's hook into the materialized-view registry.

    ``apply`` may rewrite plan prefixes into view scans; it returns the
    (possibly unchanged) plan, explain-trace note lines, and one
    cost-decision :class:`Explanation` per considered view match.
    """

    def apply(
        self, plan: logical.LogicalPlan, *, allow_stale: bool = False
    ) -> tuple[logical.LogicalPlan, list[str], list[Explanation]]:
        ...  # pragma: no cover


#: sentinel distinguishing "no in-memory hit" from a cached None result
_NO_HIT = object()


class UDFCache:
    """Memoized UDF results keyed by patch lineage id.

    Two patches with the same lineage chain are the same logical patch
    (same base image, same derivation), so a deterministic UDF's output
    can be reused across queries — the paper's "materialize intermediate
    inference" / EVA's inference-result caching, scoped to a session.

    Keys include the UDF function object, so hits require the *same*
    function across queries — hoist UDFs to module/session level rather
    than recreating lambdas per query. The store is bounded
    (``max_entries``, LRU eviction), so per-query lambdas degrade to
    wasted space at worst, never unbounded growth.

    Subclasses may override :meth:`_fetch` / :meth:`_put` to back the
    in-memory store with a second tier — :class:`~repro.core.
    materialization.PersistentUDFCache` spills results through the
    catalog so cached inference survives sessions.

    The cache is thread-safe: parallel map workers share one instance.
    The mutex guards only the in-memory LRU and the single-flight claim
    registry; the second tier's I/O (:meth:`_fetch_second_tier` /
    :meth:`_spill`) runs *outside* it, so workers serving different keys
    from disk — or computing while another fetches — never serialize on
    the memory lock. Misses are *single-flight*: when two workers miss
    the same key concurrently, one consults the second tier and computes
    while the other waits and is served the cached result, so one digest
    is never computed (or spilled) twice.
    """

    def __init__(self, max_entries: int = 100_000, *, metrics=None) -> None:
        if max_entries < 1:
            raise QueryError(
                f"max_entries must be positive, got {max_entries}"
            )
        registry = metrics if metrics is not None else NULL_REGISTRY
        lookups = registry.counter(
            "deeplens_udf_cache_lookups_total",
            "UDF-cache lookups by result",
            labels=("result",),
        )
        self._metric_hits = lookups.labels(result="hit")
        self._metric_misses = lookups.labels(result="miss")
        self._metric_disk_hits = lookups.labels(result="disk_hit")
        self._metric_waits = registry.counter(
            "deeplens_udf_cache_singleflight_waits_total",
            "waits on another worker's in-flight computation",
        )
        #: incremented by PersistentUDFCache._spill (the base tier has
        #: nowhere to spill, so the counter stays 0 here)
        self._metric_spills = registry.counter(
            "deeplens_udf_cache_spills_total",
            "fresh results spilled to the persistent tier",
        )
        self._store: dict[Any, Any] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: guards the in-memory store, the counters, and the claim
        #: registry — never held across second-tier I/O or UDF calls
        self._mutex = threading.RLock()
        #: single-flight registry: key -> event set when its computation
        #: lands in the store (or its owner fails)
        self._inflight: dict[Any, threading.Event] = {}

    def _fetch(self, key: Any) -> Any:
        """Look up one in-memory entry (must hold ``_mutex``); raises
        KeyError on miss (TypeError for unhashable keys propagates to the
        caller's skip-caching path — subscript rather than .pop(), which
        skips hashing on empty dicts)."""
        value = self._store[key]
        del self._store[key]
        self._store[key] = value  # re-insert: most-recently-used last
        return value

    def _put(self, key: Any, value: Any) -> None:
        """Insert an in-memory entry (must hold ``_mutex``)."""
        if key not in self._store and len(self._store) >= self.max_entries:
            # LRU eviction: _fetch re-inserts on hit, so insertion order
            # is recency order and the first entry is the coldest
            self._store.pop(next(iter(self._store)))
        self._store[key] = value

    # -- second tier (overridden by PersistentUDFCache) -----------------
    # Called WITHOUT the mutex, only by the single-flight owner of a key,
    # so implementations may do I/O without serializing other workers and
    # never see two concurrent calls for the same key.

    def _fetch_second_tier(self, key: Any) -> Any:
        """Consult the slow tier on a memory miss; KeyError when absent."""
        raise KeyError(key)

    def _spill(self, key: Any, value: Any) -> None:
        """Persist one freshly computed result to the slow tier."""

    def __len__(self) -> int:
        with self._mutex:
            return len(self._store)

    def clear(self) -> None:
        with self._mutex:
            self._store.clear()

    def _claim(self, key: Any) -> threading.Event | None:
        """Claim a missed key for computation (must hold ``_mutex``).

        Returns None when this caller now owns the computation, or the
        owning worker's event to wait on before re-checking the store.
        """
        event = self._inflight.get(key)
        if event is None:
            self._inflight[key] = threading.Event()
        return event

    def _release(self, key: Any) -> None:
        """End a claimed computation (after _put, or on failure) and wake
        every worker waiting for this key."""
        with self._mutex:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    @staticmethod
    def _key(name: str, fn: Callable, patch: Patch) -> tuple:
        # fn itself participates in the key (functions hash by identity,
        # and living in the key keeps them alive) so two different UDFs
        # sharing a name — e.g. both left at the default — never collide.
        # The data shape distinguishes the same logical patch with its
        # payload present vs projected away (select() / load_data=False),
        # and the metadata fingerprint distinguishes patches whose
        # lineage chains coincide but whose attributes differ — derive()
        # records op/params, not metadata_updates, so lineage alone is
        # not a sound memo key.
        return (
            name,
            fn,
            patch.patch_id,
            patch.lineage,
            patch.data.shape,
            _meta_fingerprint(patch.metadata),
        )

    @staticmethod
    def _isolate(value: Any) -> Any:
        """Deep-copy the mutable parts of cached patches (metadata —
        including nested arrays/lists — data array, patch_id slot) so
        neither the cache nor callers can corrupt the other —
        materialize() assigns patch_id in place, and callers may
        post-process data arrays or metadata values in place."""
        if isinstance(value, Patch):
            return Patch(
                img_ref=value.img_ref,
                data=value.data.copy(),
                metadata=copy.deepcopy(value.metadata),
                patch_id=value.patch_id,
            )
        if isinstance(value, list):
            return [UDFCache._isolate(item) for item in value]
        return value

    def wrap(
        self,
        name: str,
        fn: Callable[[Patch], Any],
        *,
        counters: "OperatorProfile | None" = None,
    ) -> Callable[[Patch], Any]:
        """``counters`` (an operator's profile entry) mirrors every
        hit/miss this wrapper adds to the cache-wide totals, so profiled
        plans attribute cache traffic to the map that caused it."""
        def cached(patch: Patch) -> Any:
            try:
                key = self._key(name, fn, patch)
                hash(key)
            except TypeError:  # unhashable lineage/metadata: skip caching
                return fn(patch)
            while True:
                hit = _NO_HIT
                with self._mutex:
                    try:
                        hit = self._fetch(key)
                        self.hits += 1
                    except KeyError:
                        waiter = self._claim(key)
                if hit is not _NO_HIT:
                    self._metric_hits.inc()
                    if counters is not None:
                        counters.add_cache(1, 0)
                    # isolate (deep-copy) outside the mutex: stored
                    # values are never mutated, so concurrent copies of
                    # one entry are safe, and the dominant hit-path cost
                    # stops serializing the worker pool
                    return self._isolate(hit)
                if waiter is None:
                    break
                # another worker owns this key: wait for it, then
                # re-check the store (it may have failed — then we claim)
                self._metric_waits.inc()
                waiter.wait()
            # we own the claim; release it no matter what below raises,
            # or every waiter on this key would hang forever
            try:
                try:
                    value = self._fetch_second_tier(key)
                    fresh = False
                except KeyError:
                    value = fn(patch)
                    fresh = True
                isolated = self._isolate(value)
                with self._mutex:
                    if fresh:
                        self.misses += 1
                    else:
                        self.hits += 1
                    self._put(key, isolated)
                (self._metric_misses if fresh else self._metric_disk_hits).inc()
                if counters is not None:
                    counters.add_cache(0 if fresh else 1, 1 if fresh else 0)
                if fresh:
                    self._spill(key, isolated)
            finally:
                self._release(key)
            return value

        return cached

    def wrap_batch(
        self,
        name: str,
        batch_fn: Callable[[list[Patch]], list],
        *,
        identity: Callable | None = None,
        counters: "OperatorProfile | None" = None,
    ) -> Callable[[list[Patch]], list]:
        """Batched variant: only cache misses reach the vectorized UDF.

        ``identity`` (defaulting to ``batch_fn``) is the function used in
        cache keys; passing the map's scalar fn lets the row and batch
        paths of one UDF share entries. ``counters`` mirrors hit/miss
        deltas into a profile entry, as in :meth:`wrap`.
        """
        ident = identity if identity is not None else batch_fn

        def cached(patches: list[Patch]) -> list:
            results: list = [None] * len(patches)
            keys: list = [None] * len(patches)  # None -> uncachable
            for position, patch in enumerate(patches):
                try:
                    key = self._key(name, ident, patch)
                    hash(key)
                    keys[position] = key
                except TypeError:  # unhashable: computed, never cached
                    pass
            pending = list(range(len(patches)))
            while pending:
                compute: list[int] = []
                owned: list = []
                waiting: dict[int, threading.Event] = {}
                # every claim this round is released in the finally — a
                # failure anywhere (claim scan, second tier, the UDF, the
                # store) must wake waiters rather than strand them
                try:
                    memory_hits: dict[int, Any] = {}
                    with self._mutex:
                        for position in pending:
                            key = keys[position]
                            if key is None:
                                compute.append(position)
                                continue
                            try:
                                memory_hits[position] = self._fetch(key)
                                self.hits += 1
                            except KeyError:
                                event = self._claim(key)
                                if event is None:
                                    compute.append(position)
                                    owned.append(key)
                                else:
                                    waiting[position] = event
                    # deep-copies of hits happen outside the mutex (the
                    # stored values are never mutated)
                    if memory_hits:
                        self._metric_hits.inc(len(memory_hits))
                    if counters is not None and memory_hits:
                        counters.add_cache(len(memory_hits), 0)
                    for position, value in memory_hits.items():
                        results[position] = self._isolate(value)
                    if compute:
                        # owned keys may live in the second tier; only
                        # true absences reach the vectorized UDF
                        missing: list[int] = []
                        served: dict[int, Any] = {}
                        for position in compute:
                            key = keys[position]
                            if key is None:
                                missing.append(position)
                                continue
                            try:
                                served[position] = self._fetch_second_tier(key)
                            except KeyError:
                                missing.append(position)
                        fresh: list = []
                        if missing:
                            fresh = batch_fn([patches[i] for i in missing])
                            if len(fresh) != len(missing):
                                raise QueryError(
                                    f"batch_fn returned {len(fresh)} results "
                                    f"for {len(missing)} patches"
                                )
                        isolated = {
                            position: self._isolate(value)
                            for position, value in zip(missing, fresh)
                        }
                        served_isolated = {
                            position: self._isolate(value)
                            for position, value in served.items()
                        }
                        with self._mutex:
                            self.misses += len(missing)
                            self.hits += len(served)
                            for position, value in served.items():
                                results[position] = value
                                self._put(
                                    keys[position], served_isolated[position]
                                )
                            for position, value in zip(missing, fresh):
                                results[position] = value
                                if keys[position] is not None:
                                    self._put(keys[position], isolated[position])
                        if served:
                            self._metric_disk_hits.inc(len(served))
                        if missing:
                            self._metric_misses.inc(len(missing))
                        if counters is not None:
                            counters.add_cache(len(served), len(missing))
                        for position in missing:
                            if keys[position] is not None:
                                self._spill(keys[position], isolated[position])
                finally:
                    for key in owned:
                        self._release(key)
                # keys claimed by other workers: wait (after computing our
                # own share, so two batches owning disjoint keys can never
                # deadlock on each other), then re-check the store — on an
                # owner failure the next round claims the key itself
                if waiting:
                    self._metric_waits.inc(len(waiting))
                for event in waiting.values():
                    event.wait()
                pending = sorted(waiting)
            return results

        return cached


@dataclass
class AggregateExecution:
    """A lowered aggregate: the child operator plus the reduction to run.

    ``fast`` is an optional short-circuit the lowering installs when the
    aggregate can be answered from storage statistics alone (MIN/MAX
    over a zone-mapped attribute): it returns ``(handled, value)``, and
    when handled the child operator never runs — zero blocks decoded.
    """

    operator: Operator
    kind: str
    key: Callable[[Patch], Any] | None
    reducer: Callable[[list], Any]
    fast: Callable[[], tuple[bool, Any]] | None = None

    def execute(self, *, batch_size: int | None = DEFAULT_BATCH_SIZE) -> Any:
        """Run the reduction; batched like every other terminal
        (``batch_size=None`` forces the row-at-a-time path)."""
        if self.fast is not None:
            handled, value = self.fast()
            if handled:
                return value
        if batch_size is None:
            rows = self.operator
        else:
            rows = (
                row
                for batch in self.operator.iter_batches(batch_size)
                for row in batch
            )
        # DistinctCount/GroupBy only iterate their child, so a flattened
        # row stream reuses their semantics on the batched path too
        if self.kind == "count":
            return sum(1 for _ in rows)
        if self.kind == "distinct_count":
            return DistinctCount(rows, self.key).execute()
        if self.kind == "avg":
            # SQL semantics: NULL (None) values are skipped, and AVG of
            # an empty/all-NULL input is NULL, not a division error
            total, n = 0.0, 0
            for row in rows:
                value = self.key(row[0])
                if value is None:
                    continue
                try:
                    total += float(value)
                except (TypeError, ValueError):
                    raise QueryError(
                        f"avg key produced non-numeric value {value!r} "
                        f"for patch {row[0].patch_id}"
                    ) from None
                n += 1
            return total / n if n else None
        if self.kind in ("min", "max"):
            # SQL semantics: NULLs are skipped; MIN/MAX of an empty or
            # all-NULL input is NULL
            pick = min if self.kind == "min" else max
            best = None
            for row in rows:
                value = self.key(row[0])
                if value is None:
                    continue
                try:
                    best = value if best is None else pick(best, value)
                except TypeError:
                    raise QueryError(
                        f"{self.kind} key produced incomparable value "
                        f"{value!r} for patch {row[0].patch_id}"
                    ) from None
            return best
        return GroupBy(rows, self.key, self.reducer).execute()


def _aggregate_reads_data(node: logical.Aggregate) -> bool:
    """Whether executing this aggregate can observe its rows' pixel data.

    ``count`` touches nothing; ``distinct_count``/``avg``/``group`` keyed
    by an :class:`~repro.core.udf.AttributeKey` read only metadata (and
    ``group`` additionally needs the trivial ``len`` reducer — any other
    reducer folds whole patch lists and may read anything). Opaque
    callables are conservatively assumed to read data.
    """
    if node.kind == "count":
        return False
    if not isinstance(node.key, AttributeKey):
        return True
    return node.kind == "group" and node.reducer is not len


def apply_metadata_only(
    plan: logical.LogicalPlan,
) -> tuple[logical.LogicalPlan, list[str]]:
    """Flip eligible scans to ``load_data=False`` automatically.

    A top-down pass tracking whether any consumer above each node can
    *observe* pixel data. Where nothing can — a metadata-only aggregate,
    or a ``Project`` that drops data — the storage scan underneath is
    rewritten to skip the blob heap entirely and read the columnar
    metadata segment instead. Opaque predicates, UDF maps, similarity
    joins, and rows returned to the caller all count as observers.

    Returns the (possibly unchanged) plan plus explain-trace note lines.
    """
    notes: list[str] = []

    def visit(
        node: logical.LogicalPlan, observed: bool
    ) -> logical.LogicalPlan:
        if isinstance(node, logical.Scan):
            if node.load_data and not observed:
                notes.append(
                    f"metadata-only: nothing above Scan({node.collection}) "
                    f"reads pixel data; scanning the metadata segment "
                    f"instead of the blob heap"
                )
                return replace(node, load_data=False)
            return node
        children = node.children()
        if isinstance(node, logical.Aggregate):
            flags = (_aggregate_reads_data(node),)
        elif isinstance(node, logical.Project):
            # data dropped here is invisible above, so the child only
            # needs it when the projection itself keeps it for an observer
            flags = (observed and node.keep_data,)
        elif isinstance(node, logical.Filter):
            # an opaque Predicate may read patch.data; structural
            # comparisons declare their attributes and never do
            flags = (observed or logical.expr_attrs(node.expr) is None,)
        elif isinstance(node, logical.OrderBy):
            # ordering by similarity against the data payload reads pixels
            data_distance = (
                node.vector is not None
                and (node.vector_attr or "data") == "data"
            )
            flags = (observed or data_distance,)
        elif isinstance(node, logical.Limit):
            flags = (observed,)
        else:
            # Map (UDF may read data), SimilarityJoin (features default to
            # patch.data), and any future node: assume children observed
            flags = tuple(True for _ in children)
        new_children = tuple(
            visit(child, flag) for child, flag in zip(children, flags)
        )
        if all(
            new is old for new, old in zip(new_children, children)
        ):
            return node
        return node.with_children(*new_children)

    # the caller iterates the root's rows, so the root itself is observed
    return visit(plan, True), notes


def plan_pipeline(
    optimizer: Optimizer,
    plan: logical.LogicalPlan,
    *,
    udf_cache: UDFCache | None = None,
    views: "ViewMatcher | None" = None,
    allow_stale: bool = False,
    execution: ExecutionContext | None = None,
) -> tuple[Operator | AggregateExecution, Explanation]:
    """Rewrite + lower a logical plan; returns the physical root and the
    merged explanation (logical rewrites + every physical candidate).

    ``views`` is an optional :class:`ViewMatcher` (the session's
    materialization manager): before rule rewriting, any plan prefix
    that recomputes a registered materialized view is replaced by a scan
    of the view when the cost model favours it. Stale views (a base
    collection changed since the view was built) are skipped unless
    ``allow_stale``.

    ``execution`` carries the engine configuration (worker count, batch
    size, prefetch depth). Parallel contexts thread into the lowered UDF
    maps (ordered thread-pool fan-out) and insert a prefetch stage
    between storage scans and the first map; the *resolved* configuration
    — including the batch size the planner picked from cardinality
    estimates — lands on ``Explanation.execution`` so ``explain()``
    reports it per plan.
    """
    metrics = getattr(optimizer, "metrics", None) or NULL_REGISTRY
    view_notes: list[str] = []
    view_decisions: list[Explanation] = []
    with span("rewrite"):
        if views is not None:
            plan, view_notes, view_decisions = views.apply(
                plan, allow_stale=allow_stale
            )
        plan, metadata_notes = apply_metadata_only(plan)
        rewritten, applied = rewrite(plan)
    metrics.counter(
        "deeplens_optimizer_plans_total", "physical plans built"
    ).inc()
    if applied:
        rewrites = metrics.counter(
            "deeplens_optimizer_rewrites_total",
            "logical rewrite rules fired",
            labels=("rule",),
        )
        for entry in applied:
            rewrites.labels(rule=entry.rule).inc()
    context = execution if execution is not None else ExecutionContext()
    lowering = _Lowering(optimizer, udf_cache, context)
    with span("lower"):
        root = lowering.lower(rewritten)
    explanation = _merge_decisions(view_decisions + lowering.decisions)
    explanation.rewrites = (
        view_notes
        + metadata_notes
        + [str(entry) for entry in applied]
        + lowering.notes
    )
    explanation.estimates.extend(lowering.estimates)
    explanation.logical_plan = rewritten.describe()
    explanation.execution = resolve_execution(
        context, lowering._estimate_rows(rewritten)
    )
    return root, explanation


def _merge_decisions(decisions: list[Explanation]) -> Explanation:
    if not decisions:  # degenerate plan with no cost decision (unreached
        # by QueryBuilder, which always roots at a Scan)
        trivial = PlanChoice("pipeline", 0.0)
        return Explanation(chosen=trivial, candidates=[trivial])
    # the last decision is the outermost (joins above scans): lead with
    # it, pool all candidates, and keep the per-decision structure so a
    # winner inside one decision isn't mistaken for a loser of another
    primary = decisions[-1]
    candidates = [choice for expl in decisions for choice in expl.candidates]
    return Explanation(
        chosen=primary.chosen,
        candidates=candidates,
        sections=list(decisions) if len(decisions) > 1 else [],
        estimates=[line for expl in decisions for line in expl.estimates],
    )


class _Lowering:
    def __init__(
        self,
        optimizer: Optimizer,
        udf_cache: UDFCache | None,
        execution: ExecutionContext | None = None,
    ) -> None:
        self.optimizer = optimizer
        self.udf_cache = udf_cache
        self.execution = execution if execution is not None else ExecutionContext()
        self.decisions: list[Explanation] = []
        #: extra explain-trace lines (one per memoized map; each map node
        #: lowers exactly once, so no dedup is needed)
        self.notes: list[str] = []
        #: cardinality-estimate lines the lowering itself produced (join
        #: sizes / dims; scan-group estimates live in their decisions)
        self.estimates: list[str] = []
        #: per-node row-estimate memo: joins estimate their inputs during
        #: lowering and plan_pipeline estimates the root afterwards, so
        #: without it each statistics lookup would repeat per walk
        self._row_estimates: dict[int, float] = {}
        #: per-join sampled match-fraction memo (id(node) -> fraction or
        #: None) — computed once, consulted by both the lowering and the
        #: row estimator
        self._match_fractions: dict[int, float | None] = {}

    # -- instrumentation --------------------------------------------------

    def _profiled(
        self,
        operator: Operator,
        node: logical.LogicalPlan,
        *,
        label: str | None = None,
        children: tuple[Operator, ...] = (),
    ) -> Operator:
        """Wrap a lowered operator in a profiling counter when this plan
        carries a runtime profile; transparent otherwise."""
        profile = self.execution.profile
        if profile is None:
            return operator
        entry = profile.operator(
            label if label is not None else node.label(),
            est_rows=self._estimate_rows(node),
            children=[
                child.entry
                for child in children
                if isinstance(child, ProfiledOperator)
            ],
        )
        return ProfiledOperator(operator, entry)

    # -- node dispatch --------------------------------------------------

    def lower(self, node: logical.LogicalPlan) -> Operator | AggregateExecution:
        if isinstance(node, logical.Aggregate):
            child = self._lower_rows(node.child)
            return AggregateExecution(
                child,
                node.kind,
                node.key,
                node.reducer,
                self._minmax_fast(node),
            )
        return self._lower_rows(node)

    def _minmax_fast(
        self, node: logical.Aggregate
    ) -> Callable[[], tuple[bool, Any]] | None:
        """Zone-map short-circuit for MIN/MAX over an unfiltered scan:
        the segment's per-block statistics already hold every sealed
        block's lo/hi, so the aggregate answers without decoding any
        block. Returns None when ineligible; the returned thunk itself
        reports unhandled (falling back to the operator) when the zones
        cannot prove the bounds — mixed value types, unorderable values.
        """
        if node.kind not in ("min", "max"):
            return None
        if not isinstance(node.key, AttributeKey):
            return None
        if not isinstance(node.child, logical.Scan):
            return None
        try:
            collection = self.optimizer.catalog.collection(
                node.child.collection
            )
        except QueryError:
            return None
        reader = getattr(collection, "attr_min_max", None)
        if reader is None:
            return None
        attr = node.key.attr
        side = 0 if node.kind == "min" else 1
        self.notes.append(
            f"zone-map-minmax: {node.kind}({attr}) eligible to answer from "
            f"segment block statistics without decoding any block"
        )

        def fast() -> tuple[bool, Any]:
            bounds = reader(attr)
            if bounds is None:
                return False, None
            return True, bounds[side]

        return fast

    def _lower_rows(self, node: logical.LogicalPlan) -> Operator:
        if isinstance(node, (logical.Filter, logical.Scan)):
            return self._lower_scan_group(node)
        if isinstance(node, logical.Map):
            return self._lower_map(node)
        if isinstance(node, logical.Project):
            child = self._lower_rows(node.child)
            return self._profiled(
                Project(child, node.attrs, keep_data=node.keep_data),
                node,
                children=(child,),
            )
        if isinstance(node, logical.Limit):
            child = self._lower_rows(node.child)
            return self._profiled(Limit(child, node.n), node, children=(child,))
        if isinstance(node, logical.OrderBy):
            child = self._lower_rows(node.child)
            key = (
                _distance_key(node.vector_attr or "data", node.vector)
                if node.vector is not None
                else _attr_key(node.attr)
            )
            return self._profiled(
                OrderBy(child, key=key, reverse=node.reverse),
                node,
                children=(child,),
            )
        if isinstance(node, logical.AnnTopK):
            return self._lower_ann_topk(node)
        if isinstance(node, logical.SimilarityJoin):
            return self._lower_similarity_join(node)
        raise QueryError(f"cannot lower logical node {node.label()}")

    # -- scans and filters ----------------------------------------------

    def _lower_scan_group(self, node: logical.LogicalPlan) -> Operator:
        """A maximal Filter* -> Scan chain becomes one access-path
        decision; filters over anything else lower to plain Selects."""
        filters: list[logical.Filter] = []
        current = node
        while isinstance(current, logical.Filter):
            filters.append(current)
            current = current.child
        if isinstance(current, logical.Scan):
            for f in filters:
                if f.on != 0:
                    raise QueryError(
                        f"filter on patch {f.on} but rows over "
                        f"{current.collection!r} have a single patch"
                    )
            combined = _combine_exprs([f.expr for f in filters])
            operator, explanation = self.optimizer.plan_filter(
                current.collection, combined, load_data=current.load_data
            )
            self.decisions.append(explanation)
            profile = self.execution.profile
            if profile is not None:
                label = f"{current.label()} [{explanation.chosen.kind}]"
                if combined is not None:
                    label = (
                        f"{current.label()} filter {combined!r} "
                        f"[{explanation.chosen.kind}]"
                    )
                entry = profile.operator(
                    label, est_rows=self._estimate_rows(node)
                )
                if combined is not None:
                    try:
                        base_rows = len(
                            self.optimizer.catalog.collection(
                                current.collection
                            )
                        )
                    except QueryError:
                        base_rows = 0
                    version_of = getattr(
                        self.optimizer.catalog, "collection_version", None
                    )
                    entry.set_feedback(
                        current.collection,
                        logical.expr_signature_key(combined),
                        base_rows,
                        version=(
                            version_of(current.collection)
                            if version_of is not None
                            else 0
                        ),
                    )
                if explanation.chosen.kind == "zone-map-scan":
                    # grade the zone-map skip estimate like a cardinality:
                    # the scan reports (skipped, scanned) actuals into the
                    # entry as it finishes
                    scan = _find_metadata_scan(operator)
                    if scan is not None:
                        scan.on_blocks = entry.add_blocks
                        entry.set_block_estimate(
                            explanation.chosen.params["blocks_skipped"],
                            explanation.chosen.params["blocks_total"],
                        )
                operator = ProfiledOperator(
                    _instrument_scan_group(operator, entry), entry
                )
            return operator
        inner = self._lower_rows(current)
        operator = inner
        for f in reversed(filters):  # innermost logical filter first
            if f.on >= operator.arity:
                raise QueryError(
                    f"filter on patch {f.on} but rows have arity "
                    f"{operator.arity}"
                )
            operator = Select(operator, f.expr, on=f.on)
        if filters:
            operator = self._profiled(operator, node, children=(inner,))
        return operator

    # -- top-k similarity -------------------------------------------------

    def _lower_ann_topk(self, node: logical.AnnTopK) -> Operator:
        """Access-path selection for top-k similarity: an index probe
        (HNSW beam search or BallTree k-NN) when the pattern sits
        directly on a bare scan, exact top-k selection over the lowered
        child otherwise (residual filters make probe results unsound —
        the k nearest overall are not the k nearest *matching* rows)."""
        child = node.child
        dim = len(node.query)
        profile = self.execution.profile
        if isinstance(child, logical.Scan):
            explanation = self.optimizer.plan_topk_similarity(
                child.collection, node.attr, node.k, dim
            )
            self.decisions.append(explanation)
            kind = explanation.chosen.kind
            collection = self.optimizer.catalog.collection(child.collection)
            operator: Operator
            if kind in ("hnsw-ann", "balltree-knn"):
                operator = AnnTopKScan(
                    collection,
                    node.attr,
                    node.query,
                    node.k,
                    "hnsw" if kind == "hnsw-ann" else "balltree",
                    ef=explanation.chosen.params.get("ef"),
                    load_data=child.load_data,
                )
            else:
                operator = AnnTopKExact(
                    CollectionScan(collection, load_data=child.load_data),
                    node.attr,
                    node.query,
                    node.k,
                )
            if profile is not None:
                entry = profile.operator(
                    f"{node.label()} [{kind}]", est_rows=float(node.k)
                )
                if isinstance(operator, AnnTopKScan):
                    if operator.kind == "hnsw":
                        # the cost model's visited count, graded against
                        # the distances the beam actually computed
                        ef = explanation.chosen.params.get("ef", node.k)
                        entry.set_candidate_estimate(
                            float(ef)
                            * float(np.log2(max(len(collection), 2)))
                        )
                    operator.on_search = entry.add_ann
                operator = ProfiledOperator(
                    InputProbe(
                        operator,
                        entry,
                        index_probes=isinstance(operator, AnnTopKScan),
                    ),
                    entry,
                )
            return operator
        inner = self._lower_rows(child)
        return self._profiled(
            AnnTopKExact(inner, node.attr, node.query, node.k),
            node,
            label=f"{node.label()} [exact-topk]",
            children=(inner,),
        )

    # -- maps ------------------------------------------------------------

    def _lower_map(self, node: logical.Map) -> Operator:
        child = self._lower_rows(node.child)
        fn, batch_fn = node.fn, node.batch_fn
        profile = self.execution.profile
        entry: OperatorProfile | None = None
        if profile is not None:
            entry = profile.operator(
                node.label(),
                est_rows=self._estimate_rows(node),
                children=[
                    op.entry
                    for op in (child,)
                    if isinstance(op, ProfiledOperator)
                ],
            )
        if node.cache:
            if self.udf_cache is None:
                raise QueryError(
                    f"map {node.name!r} asks for caching but the planner "
                    f"has no UDF cache"
                )
            if batch_fn is not None:
                batch_fn = self.udf_cache.wrap_batch(
                    node.name, batch_fn, identity=fn, counters=entry
                )
            fn = self.udf_cache.wrap(node.name, fn, counters=entry)
            self.notes.append(
                f"memoize-udf: map {node.name!r} memoized by patch lineage id"
            )
        if (
            self.execution.parallel
            and self.execution.prefetch_batches > 0
            and _scan_rooted(child)
        ):
            # bounded prefetch between the storage scan and the first UDF
            # map: the scan's heap reads/decodes for batch i+1 run while
            # the pool infers batch i. Only the innermost map above a
            # scan chain gets one (an outer map's child is a MapPatches,
            # which _scan_rooted rejects), so one plan spawns one
            # prefetch thread, not one per stage.
            child = PrefetchBatches(
                child,
                depth=self.execution.prefetch_batches,
                metrics=self.execution.metrics,
            )
            self.notes.append(
                f"prefetch: storage scan decodes "
                f"{self.execution.prefetch_batches} batches ahead of map "
                f"{node.name!r}"
            )
        operator: Operator = MapPatches(
            child, fn, batch_fn=batch_fn, execution=self.execution
        )
        if entry is not None:
            operator = ProfiledOperator(operator, entry)
        return operator

    # -- joins -----------------------------------------------------------

    def _lower_similarity_join(self, node: logical.SimilarityJoin) -> Operator:
        left_op = self._lower_rows(node.left)
        right_op = self._lower_rows(node.right)
        n_left = max(int(self._estimate_rows(node.left)), 1)
        n_right = max(int(self._estimate_rows(node.right)), 1)
        dim, dim_source = self._join_dim(node)
        match_fraction = self._join_match_fraction(node)
        est_pairs = estimate_join_output(
            n_left,
            n_right,
            dim,
            exclude_self=node.exclude_self,
            match_fraction=match_fraction,
        )
        if match_fraction is not None:
            self.estimates.append(
                f"similarity-join: left ~ {n_left} rows, right ~ {n_right} "
                f"rows, match-fraction {match_fraction:.3f} (sampled "
                f"pairwise distances) -> ~ {est_pairs:.0f} pairs"
            )
        else:
            self.estimates.append(
                f"similarity-join: left ~ {n_left} rows, right ~ {n_right} "
                f"rows, dim {dim} ({dim_source}) -> ~ {est_pairs:.0f} pairs"
            )
        explanation = self.optimizer.plan_similarity_join(n_left, n_right, dim)
        self.decisions.append(explanation)
        features = node.features or _default_features
        kind = explanation.chosen.kind
        operator: Operator
        if kind == "nested-loop":
            operator = NestedLoopJoin(
                left_op,
                right_op,
                _distance_theta(features, node.threshold),
                exclude_self=node.exclude_self,
            )
        elif kind == "balltree-index-left":
            # build on the left, probe with the right, then restore the
            # caller's (left, right) output order
            operator = SwapSides(
                BallTreeSimilarityJoin(
                    right_op,
                    left_op,
                    threshold=node.threshold,
                    features=features,
                    exclude_self=node.exclude_self,
                )
            )
        else:
            operator = BallTreeSimilarityJoin(
                left_op,
                right_op,
                threshold=node.threshold,
                features=features,
                exclude_self=node.exclude_self,
            )
        return self._profiled(
            operator,
            node,
            label=f"{node.label()} [{kind}]",
            children=(left_op, right_op),
        )

    # -- cardinality estimation ------------------------------------------

    def _join_dim(self, node: logical.SimilarityJoin) -> tuple[int, str]:
        return join_dim(self.optimizer, node)

    def _join_match_fraction(self, node: logical.SimilarityJoin) -> float | None:
        """Sampled pairwise match fraction for a default-features join,
        from the sides' recorded vector samples; None keeps the
        geometric-decay constant (memoized per node — the lowering and
        the row estimator both ask)."""
        if id(node) in self._match_fractions:
            return self._match_fractions[id(node)]
        fraction = self._join_match_fraction_uncached(node)
        self._match_fractions[id(node)] = fraction
        return fraction

    def _join_match_fraction_uncached(
        self, node: logical.SimilarityJoin
    ) -> float | None:
        if node.features is not None or node.dim is not None:
            # custom features live in an unrecorded space — the stored
            # patch-data sample says nothing about their distances — and
            # a caller-specified dim is a full manual override
            return None
        left_name = _base_collection(node.left)
        right_name = _base_collection(node.right)
        if left_name is None or right_name is None:
            return None
        left_stats = self.optimizer.collection_statistics(left_name)
        right_stats = self.optimizer.collection_statistics(right_name)
        if left_stats is None or right_stats is None:
            return None
        return sample_match_fraction(
            left_stats.data_sample(),
            right_stats.data_sample(),
            node.threshold,
            # identity pairs leave the sample exactly when they leave the
            # join output (see estimate_join_output)
            same=left_name == right_name and node.exclude_self,
        )

    def _estimate_rows(self, node: logical.LogicalPlan) -> float:
        """Estimated output rows of a logical subtree, statistics-driven
        where the subtree bottoms out at a materialized scan (memoized
        per node for the lifetime of this lowering)."""
        cached = self._row_estimates.get(id(node))
        if cached is not None:
            return cached
        estimate = self._estimate_rows_uncached(node)
        self._row_estimates[id(node)] = estimate
        return estimate

    def _estimate_rows_uncached(self, node: logical.LogicalPlan) -> float:
        if isinstance(node, logical.Scan):
            try:
                return float(
                    len(self.optimizer.catalog.collection(node.collection))
                )
            except QueryError:
                return 1.0
        if isinstance(node, logical.Filter):
            # estimate the maximal Filter chain as one combined predicate
            # (mirroring the scan-group collapse): identical to the
            # per-filter product for the statistics paths (conjunctions
            # multiply there anyway), but it lets a logged feedback
            # correction for the *conjunction* apply as a unit
            filters: list[logical.Filter] = []
            current: logical.LogicalPlan = node
            while isinstance(current, logical.Filter):
                filters.append(current)
                current = current.child
            combined = _combine_exprs([f.expr for f in filters])
            collection = _base_collection(node)
            if collection is not None:
                estimate = self.optimizer.predicate_estimate(
                    collection, combined
                )
            else:
                estimate = fallback_estimate(combined)
            return self._estimate_rows(current) * estimate.selectivity
        if isinstance(node, logical.Limit):
            return min(float(node.n), self._estimate_rows(node.child))
        if isinstance(node, logical.AnnTopK):
            return min(float(node.k), self._estimate_rows(node.child))
        if isinstance(node, logical.SimilarityJoin):
            # output cardinality from input sizes + recorded feature dim
            # (the old code returned the left input's estimate, as if a
            # join never expanded or shrank its input)
            n_left = self._estimate_rows(node.left)
            n_right = self._estimate_rows(node.right)
            dim, _ = self._join_dim(node)
            return estimate_join_output(
                n_left,
                n_right,
                dim,
                exclude_self=node.exclude_self,
                match_fraction=self._join_match_fraction(node),
            )
        children = node.children()
        if not children:
            return 1.0
        return self._estimate_rows(children[0])


def estimate_plan_rows(
    optimizer: Optimizer, node: logical.LogicalPlan
) -> float:
    """Estimated output rows of a logical subtree (the lowering's own
    cardinality model, exposed for tests and benchmarks)."""
    return _Lowering(optimizer, None)._estimate_rows(node)


def join_dim(optimizer: Optimizer, node: logical.SimilarityJoin) -> tuple[int, str]:
    """Feature dimensionality for join costing: the caller's ``dim``,
    else the statistics' recorded embedding dim (default features
    ravel ``patch.data``, so the data profile is the right one),
    else the fixed fallback."""
    if node.dim:
        return node.dim, "caller-specified"
    if node.features is None:
        for side in (node.left, node.right):
            collection = _base_collection(side)
            if collection is None:
                continue
            stats = optimizer.collection_statistics(collection)
            if stats is None:
                continue
            dim = stats.embedding_dim()
            if dim is not None:
                return dim, f"recorded data dim of {collection!r}"
    return DEFAULT_JOIN_DIM, "fallback-constant"


def _scan_rooted(operator: Operator) -> bool:
    """True when a physical chain bottoms out at a storage scan with only
    filters in between — the shape where a prefetch stage buys I/O
    overlap. Anything heavier in between (another map, a join) already
    decouples the scan from the consumer. Profiling wrappers are
    transparent: instrumentation must not change what gets prefetched."""
    current = operator
    while isinstance(current, (Select, ProfiledOperator, InputProbe)):
        current = current.child
    return isinstance(
        current,
        (
            CollectionScan,
            IndexLookupScan,
            IndexRangeScan,
            IteratorScan,
            MetadataScan,
        ),
    )


def _find_metadata_scan(operator: Operator) -> MetadataScan | None:
    """The MetadataScan at the base of a lowered scan group, if any."""
    current: Operator | None = operator
    while current is not None:
        if isinstance(current, MetadataScan):
            return current
        current = getattr(current, "child", None)
    return None


def _instrument_scan_group(
    operator: Operator, entry: "OperatorProfile"
) -> Operator:
    """Insert an :class:`InputProbe` directly above the storage scan at
    the base of a scan group, so the entry's input-row count is what the
    storage layer actually produced — for index-backed scans, the probe
    count. Residual Selects stay above the probe."""
    if isinstance(operator, Select):
        innermost = operator
        while isinstance(innermost.child, Select):
            innermost = innermost.child
        base = innermost.child
        innermost.child = InputProbe(
            base,
            entry,
            index_probes=isinstance(base, (IndexLookupScan, IndexRangeScan)),
        )
        return operator
    return InputProbe(
        operator,
        entry,
        index_probes=isinstance(operator, (IndexLookupScan, IndexRangeScan)),
    )


def _base_collection(node: logical.LogicalPlan) -> str | None:
    """The materialized collection a subtree's rows originate from
    (first-child descent to the underlying Scan), or None for plans
    rooted elsewhere."""
    current: logical.LogicalPlan | None = node
    while current is not None:
        if isinstance(current, logical.Scan):
            return current.collection
        children = current.children()
        current = children[0] if children else None
    return None


def _combine_exprs(exprs: list[Expr]) -> Expr | None:
    if not exprs:
        return None
    if len(exprs) == 1:
        return exprs[0]
    # exprs were collected outermost-first; restore query order
    ordered = list(reversed(exprs))
    return And(*ordered)


def _meta_fingerprint(metadata: dict) -> tuple:
    """A hashable digest of a patch's metadata for cache keying.

    Unhashable oddball values raise TypeError here, which the cache's
    existing handler turns into "skip caching for this patch".
    """
    return tuple(
        sorted(
            (key, _value_fingerprint(value))
            for key, value in metadata.items()
            if key != LINEAGE_KEY  # the lineage chain is keyed separately
        )
    )


def _value_fingerprint(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        # a keyed digest, not hash(): bytes hashing is salted per process,
        # and these fingerprints key the *persistent* UDF result store
        digest = hashlib.blake2b(value.tobytes(), digest_size=8).hexdigest()
        return ("ndarray", value.shape, value.dtype.str, digest)
    if isinstance(value, (list, tuple)):
        return tuple(_value_fingerprint(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            sorted((key, _value_fingerprint(item)) for key, item in value.items())
        )
    return value


def _default_features(patch: Patch) -> np.ndarray:
    data = patch.data
    if data.size == 0:
        # otherwise every 0-dim pair is at distance 0 and the join
        # silently degenerates to a cross product
        raise QueryError(
            f"similarity join default features need patch data, but patch "
            f"{patch.patch_id} has none (was it projected away by a "
            f"select()? pass features=... or keep_data=True)"
        )
    return data


def _distance_key(attr: str, vector: tuple) -> Callable[[Patch], float]:
    """Sort key for ``ORDER BY similarity``: Euclidean distance from the
    patch's vector (under ``attr``, or its data payload) to the query.
    Rows without a comparable vector sort last."""
    query = np.asarray(vector, dtype=np.float64).ravel()

    def key(patch: Patch) -> float:
        value = patch.data if attr == "data" else patch.metadata.get(attr)
        if value is None:
            return float("inf")
        v = np.asarray(value, dtype=np.float64).ravel()
        if v.shape != query.shape:
            return float("inf")
        return float(np.sqrt(((v - query) ** 2).sum()))

    return key


def _attr_key(attr: str) -> Callable[[Patch], Any]:
    missing = object()

    def key(patch: Patch) -> Any:
        value = patch.metadata.get(attr, missing)
        if value is missing:
            raise QueryError(
                f"order_by attribute {attr!r} missing on patch "
                f"{patch.patch_id}"
            )
        return value

    return key


def _distance_theta(
    features: Callable[[Patch], np.ndarray], threshold: float
) -> Callable[[Patch, Patch], bool]:
    def theta(a: Patch, b: Patch) -> bool:
        va = np.asarray(features(a), dtype=np.float64).ravel()
        vb = np.asarray(features(b), dtype=np.float64).ravel()
        return float(np.linalg.norm(va - vb)) <= threshold

    return theta
