"""The visual query optimizer (Sections 5 and 7.4).

Three decisions, each the subject of one of the paper's experiments:

* **access-path selection** (Figure 4): full scan + filter vs hash lookup
  vs B+ range scan, driven by the predicate's conjuncts and the catalog's
  index registry;
* **similarity-join strategy** (Figures 5/7): nested loop vs Ball-tree
  (and which side to index), using the non-linear cost model;
* **device placement** (Figure 8): CPU/AVX/GPU per kernel profile;
* **accuracy-aware push-down** (Table 1): filter placement around a
  matching operator changes recall, so plans carry accuracy estimates and
  the optimizer exposes both orders with their latency/accuracy trade-off.

Cardinalities come from a :class:`~repro.core.statistics.
StatisticsProvider` (by default the catalog itself): equi-depth
histograms for ranges, most-common-value counts for equality, distinct
sketches for the tail. Collections without statistics fall back to the
fixed ``EQ_SELECTIVITY``/``RANGE_SELECTIVITY`` constants, and every
estimate records which source backed it so ``explain()`` can show
est-vs-fallback per decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.catalog import Catalog
from repro.core.executor import ExecutionPlan
from repro.core.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.expressions import And, Comparison, Expr, extract_bounds
from repro.core.logical import expr_signature_key
from repro.core.operators import (
    CollectionScan,
    IndexLookupScan,
    IndexRangeScan,
    MetadataScan,
    Operator,
    Select,
)
from repro.core.optimizer.cost import CostModel
from repro.core.profile import RuntimeProfile
from repro.core.statistics import (
    EQ_SELECTIVITY,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    SOURCE_FEEDBACK,
    CollectionStatistics,
    Estimate,
    StatisticsProvider,
    fallback_estimate,
)
from repro.errors import OptimizerError
from repro.vision.backends.device import DEVICE_SPECS

__all__ = [
    "EQ_SELECTIVITY",
    "FEEDBACK_STALENESS_FRACTION",
    "FEEDBACK_STALENESS_MIN",
    "NEQ_SELECTIVITY",
    "RANGE_SELECTIVITY",
    "Explanation",
    "Optimizer",
    "PlanAccuracy",
    "PlanChoice",
]

#: a feedback correction goes stale once the collection has mutated more
#: than ``max(MIN, FRACTION * rows-at-estimate-time)`` times past the
#: newest observation — after that, fresh histograms win again
FEEDBACK_STALENESS_MIN = 16
FEEDBACK_STALENESS_FRACTION = 0.25


@dataclass(frozen=True)
class PlanChoice:
    """One considered physical plan with its estimated cost."""

    kind: str
    cost_seconds: float
    params: dict = field(default_factory=dict)
    accuracy: "PlanAccuracy | None" = None

    def __repr__(self) -> str:
        acc = f", accuracy={self.accuracy}" if self.accuracy else ""
        est = ""
        if "est_rows" in self.params:
            source = self.params.get("stat_source", "?")
            est = f", ~{self.params['est_rows']:.0f} rows ({source})"
        zones = ""
        if "blocks_total" in self.params:
            zones = (
                f", skipping {self.params['blocks_skipped']}/"
                f"{self.params['blocks_total']} blocks"
            )
        return f"PlanChoice({self.kind}, {self.cost_seconds:.4g}s{est}{zones}{acc})"


@dataclass(frozen=True)
class PlanAccuracy:
    """Estimated accuracy profile of a plan (Table 1's second axis)."""

    precision: float
    recall: float

    def __repr__(self) -> str:
        return f"(P={self.precision:.2f}, R={self.recall:.2f})"


@dataclass
class Explanation:
    """The optimizer's reasoning: every candidate and the winner.

    For pipeline queries planned through the logical IR, ``rewrites``
    lists the applied logical rewrites (one line each), ``logical_plan``
    holds the rewritten tree rendering, and ``sections`` keeps each
    cost decision (one per scan group / join) intact so readers can see
    which candidate won *within* each decision — the flat ``candidates``
    list pools them all. All three stay empty for direct physical
    planning calls.

    ``estimates`` lists the cardinality estimates the decisions rested
    on, one line each, naming the statistic used (histogram / mcv /
    distinct) or ``fallback-constant`` when no statistics existed.

    ``execution`` is the resolved engine configuration of a pipeline
    plan (an :class:`~repro.core.executor.ExecutionPlan`): worker count,
    the batch size the planner picked (and from what — caller-specified
    vs cardinality estimate vs default), and the prefetch depth. None
    for direct physical planning calls.

    ``profile`` is the executed plan's runtime profile when the query
    ran under ``explain(analyze=True)`` / ``EXPLAIN ANALYZE``: one line
    per physical operator with estimated vs actual rows and the
    Q-error, next to the plan decisions they grade.
    """

    chosen: PlanChoice
    candidates: list[PlanChoice]
    rewrites: list[str] = field(default_factory=list)
    logical_plan: str | None = None
    sections: list["Explanation"] = field(default_factory=list)
    estimates: list[str] = field(default_factory=list)
    execution: ExecutionPlan | None = None
    profile: RuntimeProfile | None = None

    def __str__(self) -> str:
        lines = []
        if self.logical_plan:
            lines.append("logical plan:")
            lines.extend(f"  {line}" for line in self.logical_plan.splitlines())
        if self.rewrites:
            lines.append("applied rewrites:")
            lines.extend(f"  {rewrite}" for rewrite in self.rewrites)
        if self.estimates:
            lines.append("cardinality estimates:")
            lines.extend(f"  {line}" for line in self.estimates)
        if self.execution is not None:
            lines.append(f"execution: {self.execution}")
        if self.sections:
            for number, section in enumerate(self.sections, 1):
                lines.append(f"decision {number}: chosen: {section.chosen}")
                lines.extend(
                    f"  considered: {candidate}"
                    for candidate in section.candidates
                )
        else:
            lines.append(f"chosen: {self.chosen}")
            lines.extend(
                f"  considered: {candidate}" for candidate in self.candidates
            )
        if self.profile is not None:
            lines.extend(str(self.profile).splitlines())
        return "\n".join(lines)


class Optimizer:
    """Cost-based planner over the catalog's collections and indexes.

    ``statistics`` is the :class:`StatisticsProvider` consulted for
    cardinality estimation; it defaults to the catalog itself, which
    collects per-attribute statistics at materialization time.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel | None = None,
        statistics: StatisticsProvider | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.catalog = catalog
        self.cost = cost_model or CostModel()
        self.statistics: StatisticsProvider = (
            statistics if statistics is not None else catalog
        )
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        feedback = self.metrics.counter(
            "deeplens_optimizer_feedback_total",
            "feedback-correction decisions by outcome",
            labels=("outcome",),
        )
        self._metric_feedback_applied = feedback.labels(outcome="applied")
        self._metric_feedback_abstained = feedback.labels(outcome="abstained")

    # -- cardinality estimation ------------------------------------------

    def collection_statistics(
        self, collection_name: str
    ) -> CollectionStatistics | None:
        return self.statistics.statistics_for(collection_name)

    def predicate_estimate(
        self, collection_name: str, expr: Expr | None
    ) -> Estimate:
        """Selectivity of ``expr`` over a collection, with its source.

        A logged feedback correction — the median observed selectivity
        of this exact predicate over this collection, recorded by
        ``EXPLAIN ANALYZE`` runs into the catalog's
        :class:`~repro.core.profile.PlanQualityLog` — wins over every
        model (source ``feedback``): an observation beats an estimate,
        and it is precisely the correlated conjunctions the independence
        assumption mangles that it corrects. Otherwise uses the
        statistics provider's histograms/MCVs when the collection has
        statistics, else the fixed fallback constants (source
        ``fallback-constant``).
        """
        if expr is not None:
            correction = self._feedback_correction(collection_name, expr)
            if correction is not None:
                return Estimate(correction, SOURCE_FEEDBACK)
        stats = self.collection_statistics(collection_name)
        if stats is None or stats.row_count == 0:
            return fallback_estimate(expr)
        return stats.estimate_predicate(expr)

    def _feedback_correction(
        self, collection_name: str, expr: Expr
    ) -> float | None:
        """Median observed selectivity of this exact predicate shape, or
        None when never profiled (or the catalog keeps no quality log —
        tests substitute bare providers).

        Corrections do **not** win forever: each observation carries the
        collection version it was measured at, and when every recorded
        observation is older than the staleness threshold (the same
        mutation-counter notion ``CollectionStatistics.staleness``
        tracks), the correction is ignored and fresh histograms — which
        *have* seen the new rows — take over.
        """
        log_getter = getattr(self.catalog, "plan_quality_log", None)
        if log_getter is None:
            return None
        current_version = None
        staleness = None
        version_of = getattr(self.catalog, "collection_version", None)
        if version_of is not None:
            current_version = version_of(collection_name)
            stats = self.collection_statistics(collection_name)
            rows = stats.row_count if stats is not None else 0
            staleness = max(
                FEEDBACK_STALENESS_MIN,
                int(rows * FEEDBACK_STALENESS_FRACTION),
            )
        log = log_getter()
        expr_key = expr_signature_key(expr)
        correction = log.correction(
            collection_name,
            expr_key,
            current_version=current_version,
            staleness=staleness,
        )
        # count decisions, not lookups: "applied" when an observation
        # overrode the model, "abstained" only when history existed but
        # the correction declined (staleness) — never-profiled predicates
        # are not decisions at all
        if correction is not None:
            self._metric_feedback_applied.inc()
        elif log.has_predicate_history(collection_name, expr_key):
            self._metric_feedback_abstained.inc()
        return correction

    def estimate_filter_rows(
        self, collection_name: str, expr: Expr | None
    ) -> tuple[float, str]:
        """Estimated result rows of filtering a collection, plus the
        statistic that produced the estimate."""
        n = len(self.catalog.collection(collection_name))
        estimate = self.predicate_estimate(collection_name, expr)
        return estimate.rows(n), estimate.source

    # -- access-path selection ----------------------------------------------

    def plan_filter(
        self, collection_name: str, expr: Expr | None, *, load_data: bool = True
    ) -> tuple[Operator, Explanation]:
        """Best access path for ``SELECT * FROM collection WHERE expr``.

        ``load_data=False`` plans against the columnar metadata segment:
        the base candidate is a ``metadata-scan`` (no heap reads, no
        pixel decompression), and when the predicate's zone maps prove
        some blocks cannot match, a cheaper ``zone-map-scan`` candidate
        skips them outright.
        """
        collection = self.catalog.collection(collection_name)
        n = max(len(collection), 1)
        candidates: list[tuple[PlanChoice, Operator]] = []
        described = repr(expr) if expr is not None else "scan"

        estimate = self.predicate_estimate(collection_name, expr)
        est_rows = estimate.rows(len(collection))
        scan = CollectionScan(collection, load_data=load_data)
        full = Select(scan, expr) if expr else scan
        candidates.append(
            (
                PlanChoice(
                    "full-scan" if load_data else "metadata-scan",
                    self.cost.full_scan(n)
                    if load_data
                    else self.cost.metadata_scan(n),
                    {"est_rows": est_rows, "stat_source": estimate.source},
                ),
                full,
            )
        )
        estimates = [
            f"{collection_name!r}: {described} ~ {est_rows:.0f} of "
            f"{len(collection)} rows ({estimate.source})"
        ]

        if not load_data and expr is not None:
            block_stats = getattr(collection, "metadata_block_stats", None)
            if block_stats is not None:
                kept, total, surviving = block_stats(expr)
                if total and kept < total:
                    candidates.append(
                        (
                            PlanChoice(
                                "zone-map-scan",
                                self.cost.metadata_scan(surviving),
                                {
                                    "est_rows": est_rows,
                                    "stat_source": estimate.source,
                                    "blocks_skipped": total - kept,
                                    "blocks_total": total,
                                },
                            ),
                            Select(MetadataScan(collection, expr), expr),
                        )
                    )
                    estimates.append(
                        f"{collection_name!r}: zone maps skip {total - kept} "
                        f"of {total} blocks for {described}"
                    )

        if expr is not None:
            candidates.extend(
                self._index_candidates(collection_name, expr, n, load_data)
            )

        candidates.sort(key=lambda pair: pair[0].cost_seconds)
        chosen_choice, chosen_op = candidates[0]
        return chosen_op, Explanation(
            chosen=chosen_choice,
            candidates=[choice for choice, _ in candidates],
            estimates=estimates,
        )

    def _index_candidates(
        self, collection_name: str, expr: Expr, n: int, load_data: bool = True
    ) -> list[tuple[PlanChoice, Operator]]:
        collection = self.catalog.collection(collection_name)
        conjuncts = expr.conjuncts()
        out: list[tuple[PlanChoice, Operator]] = []
        for position, conjunct in enumerate(conjuncts):
            rest = [c for i, c in enumerate(conjuncts) if i != position]
            residual = None if not rest else (rest[0] if len(rest) == 1 else And(*rest))
            if isinstance(conjunct, Comparison) and conjunct.op == "==":
                for kind in ("hash", "btree"):
                    if not self.catalog.has_index(collection_name, conjunct.attr, kind):
                        continue
                    scan: Operator = IndexLookupScan(
                        collection, conjunct.attr, conjunct.value, kind,
                        load_data=load_data,
                    )
                    if residual is not None:
                        scan = Select(scan, residual)
                    # expected fetches: the index returns exactly the
                    # rows matching this conjunct
                    eq_estimate = self.predicate_estimate(
                        collection_name, conjunct
                    )
                    expected = eq_estimate.rows(n)
                    cost = self.cost.index_point_lookup(expected)
                    out.append(
                        (
                            PlanChoice(
                                f"{kind}-lookup",
                                cost,
                                {
                                    "attr": conjunct.attr,
                                    "value": conjunct.value,
                                    "est_rows": expected,
                                    "stat_source": eq_estimate.source,
                                },
                            ),
                            scan,
                        )
                    )
            lo, hi, bound_residual = extract_bounds(conjunct, _attr_of(conjunct))
            if (lo is not None or hi is not None) and self.catalog.has_index(
                collection_name, _attr_of(conjunct), "btree"
            ):
                attr = _attr_of(conjunct)
                scan = IndexRangeScan(collection, attr, lo, hi, load_data=load_data)
                combined = _combine(bound_residual, residual)
                if combined is not None:
                    scan = Select(scan, combined)
                range_estimate = self.predicate_estimate(
                    collection_name, conjunct
                )
                expected = range_estimate.rows(n)
                cost = self.cost.index_range_scan(expected)
                out.append(
                    (
                        PlanChoice(
                            "btree-range",
                            cost,
                            {
                                "attr": attr,
                                "lo": lo,
                                "hi": hi,
                                "est_rows": expected,
                                "stat_source": range_estimate.source,
                            },
                        ),
                        scan,
                    )
                )
        return out

    # -- similarity-join strategy ---------------------------------------

    def plan_similarity_join(
        self,
        n_left: int,
        n_right: int,
        dim: int,
        *,
        prebuilt_side: str | None = None,
    ) -> Explanation:
        """Choose nested-loop vs Ball-tree and which side to index.

        ``prebuilt_side`` ('left'/'right') marks a side with an existing
        Ball-tree whose build cost is already sunk (Figure 4's "query
        time" view vs Figure 5's end-to-end view).
        """
        if n_left < 1 or n_right < 1 or dim < 1:
            raise OptimizerError(
                f"join cardinalities/dim must be positive, got "
                f"{n_left}, {n_right}, {dim}"
            )
        candidates = [
            PlanChoice(
                "nested-loop", self.cost.nested_loop_join(n_left, n_right, dim)
            ),
            PlanChoice(
                "balltree-index-right",
                self.cost.balltree_join(
                    n_left, n_right, dim, prebuilt=(prebuilt_side == "right")
                ),
                {"build_side": "right"},
            ),
            PlanChoice(
                "balltree-index-left",
                self.cost.balltree_join(
                    n_right, n_left, dim, prebuilt=(prebuilt_side == "left")
                ),
                {"build_side": "left"},
            ),
        ]
        candidates.sort(key=lambda choice: choice.cost_seconds)
        return Explanation(chosen=candidates[0], candidates=candidates)

    # -- top-k similarity access path -----------------------------------

    def plan_topk_similarity(
        self, collection_name: str, attr: str, k: int, dim: int
    ) -> Explanation:
        """Choose the access path for a top-k similarity query: HNSW
        graph probe (approximate — expected recall rides on the
        candidate), prebuilt BallTree k-NN (exact), or an exact
        scan-and-select. Costs come from recorded row counts and the
        embedding dimension; the winner and its expected recall are what
        ``explain()`` shows for ``ORDER BY similarity LIMIT k``.
        """
        from repro.indexes.hnsw import expected_recall

        collection = self.catalog.collection(collection_name)
        n = max(len(collection), 1)
        fetch = k * self.cost.fetch_per_patch
        estimates = [
            f"{collection_name!r}: top-{k} of {n} rows, {dim}-dim embeddings"
        ]
        candidates = [
            PlanChoice(
                "exact-topk-scan",
                self.cost.metadata_scan(n)
                + n * self.cost.pair_distance(dim)
                + fetch,
                {"rows_compared": n},
                accuracy=PlanAccuracy(precision=1.0, recall=1.0),
            )
        ]
        if self.catalog.has_index(collection_name, attr, "balltree"):
            candidates.append(
                PlanChoice(
                    "balltree-knn",
                    self.cost.balltree_probe(n, dim) + fetch,
                    {"attr": attr},
                    accuracy=PlanAccuracy(precision=1.0, recall=1.0),
                )
            )
        if self.catalog.has_index(collection_name, attr, "hnsw"):
            params = self.catalog.index_params(collection_name, attr, "hnsw")
            ef = max(int(params.get("ef_search", 64)), k)
            recall = expected_recall(ef, k)
            candidates.append(
                PlanChoice(
                    "hnsw-ann",
                    self.cost.hnsw_probe(n, dim, ef) + fetch,
                    {"attr": attr, "ef": ef},
                    accuracy=PlanAccuracy(precision=1.0, recall=recall),
                )
            )
            estimates.append(
                f"{collection_name!r}: hnsw probe at ef={ef} expects "
                f"recall@{k} ~ {recall:.2f}"
            )
        candidates.sort(key=lambda choice: choice.cost_seconds)
        return Explanation(
            chosen=candidates[0], candidates=candidates, estimates=estimates
        )

    # -- device placement -----------------------------------------------

    def plan_device(
        self, flops: float, bytes_moved: int, kernels: int = 1
    ) -> Explanation:
        """Pick the backend minimizing modeled kernel time (Figure 8)."""
        candidates = []
        for name, spec in DEVICE_SPECS.items():
            seconds = flops / spec.flops_per_second
            seconds += kernels * spec.launch_overhead_seconds
            if spec.transfer_bytes_per_second is not None:
                seconds += bytes_moved / spec.transfer_bytes_per_second
                seconds += spec.session_overhead_seconds
            candidates.append(PlanChoice(f"device-{name}", seconds, {"device": name}))
        candidates.sort(key=lambda choice: choice.cost_seconds)
        return Explanation(chosen=candidates[0], candidates=candidates)

    # -- accuracy-aware push-down (Table 1) -------------------------------

    def plan_dedup_filter_placement(
        self,
        *,
        n_patches: int,
        person_fraction: float,
        mislabel_rate: float,
        match_recall: float = 0.9,
        match_precision: float = 0.97,
        dim: int = 64,
    ) -> Explanation:
        """q4's two operator orders with latency *and* accuracy estimates.

        ``Patch, Filter, Match`` pushes the label filter below the match:
        cheaper (matching only the filtered subset) but any true person
        mislabeled by the detector is gone before matching — recall drops
        by roughly the mislabel rate.

        ``Patch, Match, Filter`` matches everything and filters pairs
        afterwards ("at least one person label"): a duplicate pair
        survives unless *both* of its endpoints were mislabeled, so the
        mislabel penalty is squared — higher recall, higher cost.
        """
        if not 0 < person_fraction <= 1:
            raise OptimizerError(
                f"person_fraction must be in (0, 1], got {person_fraction}"
            )
        n_persons = max(int(n_patches * person_fraction), 1)
        push = PlanChoice(
            "filter-then-match",
            self.cost.full_scan(n_patches)
            + self.cost.balltree_join(n_persons, n_persons, dim),
            {"order": ("patch", "filter", "match")},
            accuracy=PlanAccuracy(
                precision=match_precision,
                recall=match_recall * (1.0 - mislabel_rate),
            ),
        )
        late = PlanChoice(
            "match-then-filter",
            self.cost.full_scan(n_patches)
            + self.cost.balltree_join(n_patches, n_patches, dim),
            {"order": ("patch", "match", "filter")},
            accuracy=PlanAccuracy(
                precision=match_precision * (1.0 + mislabel_rate * 0.1),
                recall=match_recall * (1.0 - mislabel_rate**2),
            ),
        )
        # latency order: push-down first; the Explanation keeps both so a
        # caller with an accuracy SLO can pick the slower, better plan
        return Explanation(chosen=push, candidates=[push, late])


def _attr_of(expr: Expr) -> str:
    if isinstance(expr, Comparison):
        return expr.attr
    if hasattr(expr, "attr"):
        return expr.attr  # type: ignore[attr-defined]
    return ""


def _combine(a: Expr | None, b: Expr | None) -> Expr | None:
    if a is None:
        return b
    if b is None:
        return a
    return And(a, b)
