"""Materialization manager: persistent derived views and UDF results.

DeepLens's central optimization is choosing *when to materialize*
expensive ML UDF outputs (deferred vs. eager materialization, Section 4).
This module is the eager half, grown into a subsystem:

* **derived views** — any arity-1 query pipeline can be persisted as a
  named collection (:meth:`MaterializationManager.materialize_view`)
  through the ordinary catalog/heap path, together with the structural
  *fingerprint* of its defining logical plan and its *lineage*: the base
  collections it scans and their mutation versions at build time;
* **cost-based view reuse** — at plan time the manager is the planner's
  :class:`~repro.core.optimizer.lowering.ViewMatcher`: a plan prefix
  whose fingerprint equals a registered view's definition is rewritten
  to scan the view instead, chosen cost-based against recomputation
  (UDF inference over the base vs. a scan of the stored rows), with the
  decision and both costs surfaced in ``explain()``;
* **lineage-driven invalidation** — every
  :meth:`~repro.core.catalog.MaterializedCollection.add` bumps the base
  collection's version; a view whose recorded base versions no longer
  match is *stale* and the planner recomputes instead (unless the query
  opts into ``allow_stale``); :meth:`refresh_view` re-runs only the
  defining plan;
* **persistent UDF result store** — :class:`PersistentUDFCache` extends
  the session memo with a catalog-backed tier (lineage-keyed, LRU in
  memory, spilled through the kvstore heap) so cached inference results
  survive sessions — the paper's materialized-intermediates story, and
  what Deep Lake's persisted tensor views / EVA's inference caching do.

Fingerprints are computed over the *rewritten* defining plan
(:func:`view_fingerprint`), so pipelines that differ only by rewrites
the optimizer performs anyway (filter splitting/push-down) still match.
UDF identity inside fingerprints and cache keys uses
``module.qualname`` for named module-level functions — stable across
interpreter restarts — while lambdas/closures degrade to session-local
identity (they still match within the defining session, never after).
"""

from __future__ import annotations

import hashlib
import threading

from dataclasses import dataclass
from typing import Any

from repro.core import logical
from repro.core.catalog import Catalog, MaterializedCollection
from repro.core.executor import ExecutionContext
from repro.core.operators import DEFAULT_BATCH_SIZE, Operator
from repro.core.optimizer.lowering import (
    UDFCache,
    estimate_plan_rows,
    join_dim,
    plan_pipeline,
)
from repro.core.optimizer.optimizer import Explanation, Optimizer, PlanChoice
from repro.core.optimizer.rewriter import rewrite
from repro.core.patch import Patch
from repro.errors import QueryError, StorageError
from repro.storage.kvstore import BlobRef
from repro.storage.kvstore import serialization

#: catalog meta key holding the persisted view registry
VIEWS_META_KEY = "matview:views"


def view_fingerprint(plan: logical.LogicalPlan) -> str:
    """Fingerprint of a defining plan, taken after rule rewriting.

    Rewriting first makes the fingerprint insensitive to differences the
    optimizer erases anyway — ``filter(a & b)`` vs ``filter(a).filter(b)``,
    or a filter written above a UDF map that push-down moves below it.
    """
    rewritten, _ = rewrite(plan)
    return logical.plan_fingerprint(rewritten)


@dataclass
class ViewDefinition:
    """The persisted record of one materialized view."""

    name: str
    fingerprint: str
    plan_text: str
    #: base collection -> its catalog version when the view was (re)built
    bases: dict[str, int]
    row_count: int
    #: whether every callable in the defining plan has a session-independent
    #: identity — a non-portable view still matches in its own session but
    #: can never be matched (or refreshed without its query) after reopen
    portable: bool

    def to_value(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "plan_text": self.plan_text,
            "bases": dict(self.bases),
            "row_count": self.row_count,
            "portable": self.portable,
        }

    @classmethod
    def from_value(cls, value: dict) -> "ViewDefinition":
        return cls(
            name=value["name"],
            fingerprint=value["fingerprint"],
            plan_text=value["plan_text"],
            bases=dict(value["bases"]),
            row_count=value["row_count"],
            portable=value["portable"],
        )


class MaterializationManager:
    """Registry of materialized views plus the planner's view-matching hook.

    One per session, sharing the session's catalog and optimizer. View
    definitions persist through the catalog's meta page; the defining
    *plans* (which contain callables) additionally stay live in-process
    so :meth:`refresh_view` can re-run them — after a reopen, refresh
    needs the defining query passed back in (verified by fingerprint).
    """

    def __init__(
        self,
        catalog: Catalog,
        optimizer: Optimizer,
        udf_cache: UDFCache | None = None,
        execution: ExecutionContext | None = None,
        metrics=None,
    ) -> None:
        self.catalog = catalog
        self.optimizer = optimizer
        self.udf_cache = udf_cache
        if metrics is None:
            from repro.core.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        #: view-match attempts by outcome — how often registered views
        #: actually pay off at plan time
        self._metric_view_matches = metrics.counter(
            "deeplens_optimizer_view_matches_total",
            "materialized-view match attempts by outcome",
            labels=("outcome",),
        )
        #: engine configuration for view builds/refreshes (the session's
        #: context, so a workers=4 session rebuilds views in parallel too)
        self.execution = execution if execution is not None else ExecutionContext()
        meta = catalog.pager.get_meta()
        self._defs: dict[str, ViewDefinition] = {
            name: ViewDefinition.from_value(value)
            for name, value in meta.get(VIEWS_META_KEY, {}).items()
        }
        #: live defining plans (session-scoped; also keeps their callables
        #: alive so session-local identities cannot be reused)
        self._plans: dict[str, logical.LogicalPlan] = {}

    # -- registry -------------------------------------------------------

    def views(self) -> list[str]:
        return sorted(self._defs)

    def view(self, name: str) -> ViewDefinition:
        try:
            return self._defs[name]
        except KeyError:
            raise QueryError(
                f"no materialized view {name!r}; have {sorted(self._defs)}"
            ) from None

    def _persist(self) -> None:
        meta = self.catalog.pager.get_meta()
        meta[VIEWS_META_KEY] = {
            name: definition.to_value()
            for name, definition in sorted(self._defs.items())
        }
        self.catalog.pager.set_meta(meta)
        # Commit here so a view definition can never be lost between the
        # materialize of its backing collection and the next sync barrier.
        self.catalog.sync()

    # -- materialization ------------------------------------------------

    def materialize_view(
        self,
        name: str,
        query: Any,
        *,
        replace: bool = False,
    ) -> MaterializedCollection:
        """Run ``query`` (a QueryBuilder or logical plan) and persist its
        result as view ``name`` — a real collection, scannable and
        indexable like any other, plus a registered definition the
        planner can rewrite matching queries onto."""
        plan = self._plan_of(query)
        if isinstance(plan, logical.Aggregate):
            raise QueryError(
                "aggregates produce scalars, not patch collections; "
                "materialize the pipeline below the aggregate instead"
            )
        bases = logical.scanned_collections(plan)
        if not bases:
            raise QueryError(
                f"view {name!r} must scan at least one materialized collection"
            )
        if name in bases:
            raise QueryError(f"view {name!r} cannot be defined over itself")
        if name in self._defs and not replace:
            raise StorageError(
                f"view {name!r} already exists (pass replace=True)"
            )
        collection = self.catalog.materialize(
            self._execute(plan), name, replace=replace
        )
        self._register(name, plan, bases, len(collection))
        return collection

    def refresh_view(self, name: str, query: Any = None) -> MaterializedCollection:
        """Re-run a stale view's defining plan and swap in the result.

        Only the defining plan re-executes (and its cached UDF results
        still hit the persistent store for unchanged base rows). After a
        reopen the defining callables are gone from memory, so pass the
        defining query back in — it is verified against the stored
        fingerprint before anything runs.
        """
        definition = self.view(name)
        plan = self._plans.get(name)
        if query is not None:
            candidate = self._plan_of(query)
            if view_fingerprint(candidate) != definition.fingerprint:
                raise QueryError(
                    f"query does not match view {name!r}'s stored definition"
                )
            plan = candidate
        if plan is None:
            raise QueryError(
                f"view {name!r} was defined in another session; pass its "
                f"defining query to refresh_view"
            )
        bases = logical.scanned_collections(plan)
        collection = self.catalog.materialize(
            self._execute(plan), name, replace=True
        )
        self._register(name, plan, bases, len(collection))
        return collection

    def drop_view(self, name: str) -> None:
        """Unregister a view (the backing collection stays; re-materialize
        over it with ``replace=True`` to reclaim the name)."""
        self.view(name)  # raise on unknown names
        del self._defs[name]
        self._plans.pop(name, None)
        self._persist()

    def _register(
        self,
        name: str,
        plan: logical.LogicalPlan,
        bases: list[str],
        row_count: int,
    ) -> None:
        self._defs[name] = ViewDefinition(
            name=name,
            fingerprint=view_fingerprint(plan),
            plan_text=plan.describe(),
            bases={
                base: self.catalog.collection_version(base) for base in bases
            },
            row_count=row_count,
            portable=logical.plan_is_portable(plan),
        )
        self._plans[name] = plan
        self._persist()

    def _execute(self, plan: logical.LogicalPlan) -> list[Patch]:
        # no view matching while building a view: definitions must always
        # be computable from their bases alone. Executed *eagerly*: with
        # replace=True the catalog destroys the previous snapshot before
        # consuming the input, so a UDF failure mid-plan must surface
        # here, while the old view rows are still intact.
        operator, explanation = plan_pipeline(
            self.optimizer,
            plan,
            udf_cache=self.udf_cache,
            execution=self.execution,
        )
        if not isinstance(operator, Operator) or operator.arity != 1:
            raise QueryError(
                "only arity-1 pipelines can be materialized as views; "
                "materialize a join's sides separately"
            )
        # batched collection: view builds ride the same engine as ad-hoc
        # queries (coalesced scans, prefetch, worker fan-out)
        size = (
            explanation.execution.batch_size
            if explanation.execution is not None
            else DEFAULT_BATCH_SIZE
        )
        return [row[0] for batch in operator.iter_batches(size) for row in batch]

    @staticmethod
    def _plan_of(query: Any) -> logical.LogicalPlan:
        if isinstance(query, logical.LogicalPlan):
            return query
        getter = getattr(query, "logical_plan", None)
        if callable(getter):
            return getter()
        raise QueryError(
            f"expected a QueryBuilder or logical plan, got {type(query).__name__}"
        )

    # -- staleness ------------------------------------------------------

    def stale_bases(self, name: str) -> list[str]:
        """Base collections mutated since the view was (re)built."""
        definition = self.view(name)
        return sorted(
            base
            for base, version in definition.bases.items()
            if self.catalog.collection_version(base) != version
        )

    def is_stale(self, name: str) -> bool:
        return bool(self.stale_bases(name))

    # -- planner hook (ViewMatcher) -------------------------------------

    def apply(
        self, plan: logical.LogicalPlan, *, allow_stale: bool = False
    ) -> tuple[logical.LogicalPlan, list[str], list[Explanation]]:
        """Rewrite plan prefixes that recompute registered views.

        Walks the plan top-down (largest prefix first); a subtree whose
        fingerprint matches a fresh view's definition is replaced by a
        scan of the view when the cost model favours it. Returns the
        possibly-rewritten plan, explain-trace notes, and one decision
        Explanation per considered match.
        """
        notes: list[str] = []
        decisions: list[Explanation] = []
        if not self._defs:
            return plan, notes, decisions
        by_fingerprint: dict[str, list[ViewDefinition]] = {}
        base_sets: set[frozenset[str]] = set()
        for definition in self._defs.values():
            by_fingerprint.setdefault(definition.fingerprint, []).append(
                definition
            )
            base_sets.add(frozenset(definition.bases))
        rewritten = self._match(
            plan, by_fingerprint, base_sets, allow_stale, notes, decisions
        )
        return rewritten, notes, decisions

    def _match(
        self,
        node: logical.LogicalPlan,
        by_fingerprint: dict[str, list[ViewDefinition]],
        base_sets: set[frozenset[str]],
        allow_stale: bool,
        notes: list[str],
        decisions: list[Explanation],
    ) -> logical.LogicalPlan:
        # bare scans are never worth substituting (a view of a bare scan
        # is just a copy of its base), and skipping them keeps the walk
        # from fingerprinting every leaf
        if not isinstance(node, logical.Scan):
            replacement = self._try_rewrite(
                node, by_fingerprint, base_sets, allow_stale, notes, decisions
            )
            if replacement is not None:
                return replacement
        children = node.children()
        if not children:
            return node
        new_children = [
            self._match(
                child, by_fingerprint, base_sets, allow_stale, notes, decisions
            )
            for child in children
        ]
        if all(new is old for new, old in zip(new_children, children)):
            return node
        return node.with_children(*new_children)

    def _try_rewrite(
        self,
        node: logical.LogicalPlan,
        by_fingerprint: dict[str, list[ViewDefinition]],
        base_sets: set[frozenset[str]],
        allow_stale: bool,
        notes: list[str],
        decisions: list[Explanation],
    ) -> logical.LogicalPlan | None:
        # a fingerprint match implies identical scanned collections, so
        # subtrees over other bases skip the (rewrite + fingerprint) work
        if frozenset(logical.scanned_collections(node)) not in base_sets:
            return None
        matches = by_fingerprint.get(view_fingerprint(node))
        if not matches:
            return None
        usable: list[tuple[ViewDefinition, list[str]]] = []
        for definition in matches:
            if definition.name not in self.catalog.collections():
                continue  # backing collection dropped out from under us
            stale = self.stale_bases(definition.name)
            if stale and not allow_stale:
                self._metric_view_matches.labels(outcome="stale").inc()
                notes.append(
                    f"view-match: view {definition.name!r} matches this "
                    f"prefix but is stale (base {', '.join(map(repr, stale))} "
                    f"changed since the view was built); recomputing"
                )
                continue
            usable.append((definition, stale))
        if not usable:
            return None
        # several registered views can share a definition; the smallest
        # backing collection is the cheapest to scan
        definition, stale = min(
            usable, key=lambda pair: len(self.catalog.collection(pair[0].name))
        )
        n_view = len(self.catalog.collection(definition.name))
        cost = self.optimizer.cost
        view_choice = PlanChoice(
            "view-scan",
            cost.full_scan(n_view),
            {
                "view": definition.name,
                "est_rows": float(n_view),
                "stat_source": "row-count",
            },
        )
        recompute_choice = PlanChoice(
            "recompute",
            self._recompute_cost(node),
            {
                "est_rows": estimate_plan_rows(self.optimizer, node),
                "stat_source": "plan-estimate",
            },
        )
        ranked = sorted(
            [view_choice, recompute_choice], key=lambda c: c.cost_seconds
        )
        decisions.append(
            Explanation(
                chosen=ranked[0],
                candidates=ranked,
                estimates=[
                    f"view {definition.name!r}: {n_view} stored rows vs "
                    f"~{recompute_choice.params['est_rows']:.0f} recomputed"
                ],
            )
        )
        if ranked[0] is not view_choice:
            self._metric_view_matches.labels(
                outcome="recompute-cheaper"
            ).inc()
            notes.append(
                f"view-match: view {definition.name!r} matches this prefix "
                f"but recomputation is cheaper "
                f"({recompute_choice.cost_seconds:.4g}s vs "
                f"{view_choice.cost_seconds:.4g}s)"
            )
            return None
        self._metric_view_matches.labels(outcome="rewritten").inc()
        suffix = " (stale tolerated)" if stale else ""
        notes.append(
            f"view-match: rewrote pipeline prefix to scan materialized view "
            f"{definition.name!r} ({view_choice.cost_seconds:.4g}s vs "
            f"{recompute_choice.cost_seconds:.4g}s recompute){suffix}"
        )
        return logical.Scan(definition.name)

    def _recompute_cost(self, node: logical.LogicalPlan) -> float:
        """Modeled cost of computing a subtree from its bases — what
        scanning the view instead would save."""
        cost = self.optimizer.cost
        if isinstance(node, logical.Scan):
            try:
                n = len(self.catalog.collection(node.collection))
            except QueryError:
                n = 1
            return cost.full_scan(n)
        if isinstance(node, logical.Filter):
            return self._recompute_cost(node.child) + cost.filter_per_patch * (
                estimate_plan_rows(self.optimizer, node.child)
            )
        if isinstance(node, logical.Map):
            return self._recompute_cost(node.child) + cost.udf_map(
                estimate_plan_rows(self.optimizer, node.child)
            )
        if isinstance(node, logical.SimilarityJoin):
            n_left = max(int(estimate_plan_rows(self.optimizer, node.left)), 1)
            n_right = max(int(estimate_plan_rows(self.optimizer, node.right)), 1)
            dim, _ = join_dim(self.optimizer, node)
            join_cost = self.optimizer.plan_similarity_join(
                n_left, n_right, dim
            ).chosen.cost_seconds
            return (
                self._recompute_cost(node.left)
                + self._recompute_cost(node.right)
                + join_cost
            )
        if isinstance(node, logical.Limit):
            # conservative: a pipeline breaker below would compute its
            # whole input regardless of the limit
            return self._recompute_cost(node.child)
        # Project / OrderBy / Aggregate: child cost plus a per-row touch
        children = node.children()
        child_cost = sum(self._recompute_cost(child) for child in children)
        rows = estimate_plan_rows(self.optimizer, node)
        return child_cost + cost.filter_per_patch * rows


class PersistentUDFCache(UDFCache):
    """The session UDF memo backed by a catalog-persisted second tier.

    In memory it is the plain lineage-keyed LRU of :class:`UDFCache`;
    every miss with a *portable* key (a named module-level UDF over a
    materialized patch) additionally consults — and on compute, writes —
    a kvstore tier: a B+ tree in the catalog's pager mapping a stable
    key digest to the serialized result in the blob heap. Cached
    inference therefore survives sessions: reopening the database and
    re-running the same UDF over the same patches is served from the
    catalog without invoking the model.

    Lambdas and closures have no session-independent identity, so their
    results stay memory-only — correctness over reuse.

    Concurrency: the persistent tier implements the base class's
    out-of-mutex hooks (``_fetch_second_tier`` / ``_spill``), called only
    by a key's single-flight owner, so one digest is read, computed, and
    spilled at most once. A dedicated tier lock serializes the B+ tree
    object (tree-structure updates are not safe under concurrent access,
    even though the pager and heap each guard their own file handles),
    without ever blocking workers that are purely in memory.
    """

    #: name of the backing B+ tree inside the catalog's pager
    TREE_NAME = "udf:results"

    def __init__(
        self, catalog: Catalog, max_entries: int = 100_000, *, metrics=None
    ) -> None:
        super().__init__(max_entries, metrics=metrics)
        self.catalog = catalog
        self._tree = catalog._tree_for(self.TREE_NAME)
        #: serializes reads/inserts on the results tree (and the
        #: disk_hits counter they maintain)
        self._tier_lock = threading.Lock()
        #: hits served from the persistent tier (subset of ``hits``)
        self.disk_hits = 0

    def __len__(self) -> int:
        """Entries resident in memory (the persistent tier may hold more)."""
        return len(self._store)

    def persisted_count(self) -> int:
        with self._tier_lock:
            return len(self._tree)

    @staticmethod
    def _digest(key: tuple) -> str | None:
        """Stable digest of a memo key, or None when the UDF's identity
        does not survive sessions (lambda/closure)."""
        name, fn = key[0], key[1]
        if not logical.callable_is_portable(fn):
            return None
        payload = repr((name, logical.callable_identity(fn)) + key[2:])
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    def _fetch_second_tier(self, key: Any) -> Any:
        digest = self._digest(key)
        if digest is None:
            raise KeyError(key)
        with self._tier_lock:
            payloads = self._tree.get(digest)
            if not payloads:
                raise KeyError(key)
            payload = payloads[0]
            self.disk_hits += 1
        # the heap read + decode need only the heap's own lock
        return self._decode(payload)

    def _spill(self, key: Any, value: Any) -> None:
        digest = self._digest(key)
        if digest is None:
            return
        encoded = self._encode(value)
        if encoded is None:
            return  # non-patch results stay memory-only
        with self._tier_lock:
            if self._tree.contains(digest):
                return
        # compress + append outside the tier lock (the heap has its own);
        # single-flight means no concurrent spill of this digest, so the
        # re-check below only guards hypothetical non-owner callers — a
        # lost race costs one orphaned blob in an append-only heap
        ref = self.catalog.heap.put(encoded, compress=True)
        with self._tier_lock:
            if self._tree.contains(digest):
                return
            self._tree.insert(
                digest,
                serialization.dumps(
                    list(ref.to_tuple()), compress_arrays=False
                ),
            )
        self._metric_spills.inc()

    @staticmethod
    def _encode(value: Any) -> bytes | None:
        if value is None:
            kind, items = "none", []
        elif isinstance(value, Patch):
            kind, items = "patch", [value]
        elif isinstance(value, list) and all(
            isinstance(item, Patch) for item in value
        ):
            kind, items = "list", list(value)
        else:
            return None
        return serialization.dumps(
            {
                "kind": kind,
                "items": [patch.to_record() for patch in items],
                "ids": [patch.patch_id for patch in items],
            },
            compress_arrays=False,
        )

    def _decode(self, payload: bytes) -> Any:
        ref = BlobRef.from_tuple(tuple(serialization.loads(payload)))
        record = serialization.loads(self.catalog.heap.get(ref))
        patches = [
            Patch.from_record(item, patch_id=patch_id)
            for item, patch_id in zip(record["items"], record["ids"])
        ]
        if record["kind"] == "none":
            return None
        if record["kind"] == "patch":
            return patches[0]
        return patches
