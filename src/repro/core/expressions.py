"""Predicate expressions over patch metadata.

A tiny expression DSL with two consumers:

* operators *evaluate* expressions against patches;
* the optimizer *introspects* them — a conjunction of comparisons exposes
  its attribute/op/constant triples so index selection (hash for ``==``,
  B+ tree / sorted file for ranges) and filter push-down can reason about
  the predicate instead of treating it as an opaque callable.

Usage::

    from repro.core.expressions import Attr
    expr = (Attr("label") == "vehicle") & Attr("frameno").between(100, 200)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core.patch import Patch
from repro.errors import QueryError

def _safe_in(a: Any, b: Any) -> bool:
    """``a in b`` degrading to False when the operands cannot support
    membership (b is no container, or a is unhashable against a set) —
    a mismatched row simply doesn't match, it doesn't abort the query."""
    try:
        return a in b
    except TypeError:
        return False


def _safe_contains(a: Any, b: Any) -> bool:
    """``b in a`` with the same degrade-to-False contract as ``in``."""
    if a is None:
        return False
    try:
        return b in a
    except TypeError:
        return False


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
    "in": _safe_in,
    "contains": _safe_contains,
}


class Expr(ABC):
    """Boolean expression over one patch."""

    @abstractmethod
    def evaluate(self, patch: Patch) -> bool:
        """True when the patch satisfies the expression."""

    def __and__(self, other: "Expr") -> "And":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def conjuncts(self) -> list["Expr"]:
        """Flatten top-level ANDs (the unit of push-down/index matching)."""
        return [self]


class Comparison(Expr):
    """attr <op> constant — the indexable leaf."""

    def __init__(self, attr: str, op: str, value: Any) -> None:
        if op not in _OPS:
            raise QueryError(f"unknown comparison op {op!r}")
        self.attr = attr
        self.op = op
        self.value = value

    def evaluate(self, patch: Patch) -> bool:
        return _OPS[self.op](patch.metadata.get(self.attr), self.value)

    def __repr__(self) -> str:
        return f"({self.attr} {self.op} {self.value!r})"


class Between(Expr):
    """lo <= attr <= hi — matches range indexes directly."""

    def __init__(self, attr: str, lo: Any, hi: Any) -> None:
        if lo is None and hi is None:
            raise QueryError("between needs at least one bound")
        self.attr = attr
        self.lo = lo
        self.hi = hi

    def evaluate(self, patch: Patch) -> bool:
        value = patch.metadata.get(self.attr)
        if value is None:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __repr__(self) -> str:
        return f"({self.lo!r} <= {self.attr} <= {self.hi!r})"


class And(Expr):
    def __init__(self, *children: Expr) -> None:
        if len(children) < 2:
            raise QueryError("And needs at least two children")
        self.children = tuple(children)

    def evaluate(self, patch: Patch) -> bool:
        return all(child.evaluate(patch) for child in self.children)

    def conjuncts(self) -> list[Expr]:
        out: list[Expr] = []
        for child in self.children:
            out.extend(child.conjuncts())
        return out

    def __repr__(self) -> str:
        return " & ".join(map(repr, self.children))


class Or(Expr):
    def __init__(self, *children: Expr) -> None:
        if len(children) < 2:
            raise QueryError("Or needs at least two children")
        self.children = tuple(children)

    def evaluate(self, patch: Patch) -> bool:
        return any(child.evaluate(patch) for child in self.children)

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.children)) + ")"


class Not(Expr):
    def __init__(self, child: Expr) -> None:
        self.child = child

    def evaluate(self, patch: Patch) -> bool:
        return not self.child.evaluate(patch)

    def __repr__(self) -> str:
        return f"~{self.child!r}"


class Predicate(Expr):
    """Escape hatch: an opaque Python callable (never index-matched)."""

    def __init__(self, fn: Callable[[Patch], bool], name: str = "<fn>") -> None:
        self.fn = fn
        self.name = name

    def evaluate(self, patch: Patch) -> bool:
        return bool(self.fn(patch))

    def __repr__(self) -> str:
        return f"Predicate({self.name})"


class AlwaysTrue(Expr):
    def evaluate(self, patch: Patch) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


def extract_bounds(
    expr: Expr | None, attr: str
) -> tuple[Any | None, Any | None, Expr | None]:
    """Split ``expr`` into bounds on ``attr`` plus a residual expression.

    Returns ``(lo, hi, residual)``: the tightest inclusive range implied by
    the top-level conjuncts on ``attr`` (either may be None for open), and
    the conjunction of every other conjunct (None when nothing remains).
    This is the analysis behind temporal filter push-down (Section 3.1)
    and range-index selection.
    """
    if expr is None:
        return None, None, None
    lo: Any | None = None
    hi: Any | None = None
    residual: list[Expr] = []
    for conjunct in expr.conjuncts():
        new_lo: Any | None = None
        new_hi: Any | None = None
        if isinstance(conjunct, Between) and conjunct.attr == attr:
            new_lo, new_hi = conjunct.lo, conjunct.hi
        elif isinstance(conjunct, Comparison) and conjunct.attr == attr:
            if conjunct.op == "==":
                new_lo = new_hi = conjunct.value
            elif conjunct.op in ("<", "<="):
                new_hi = conjunct.value
            elif conjunct.op in (">", ">="):
                new_lo = conjunct.value
            else:
                residual.append(conjunct)
                continue
            if conjunct.op in ("<", ">"):
                # strict bounds stay as residual filters on top of the
                # inclusive scan range
                residual.append(conjunct)
        else:
            residual.append(conjunct)
            continue
        if new_lo is not None and (lo is None or new_lo > lo):
            lo = new_lo
        if new_hi is not None and (hi is None or new_hi < hi):
            hi = new_hi
    if not residual:
        return lo, hi, None
    if len(residual) == 1:
        return lo, hi, residual[0]
    return lo, hi, And(*residual)


class Attr:
    """Attribute reference — the DSL's entry point."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "==", value)

    def __ne__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "!=", value)

    def __lt__(self, value) -> Comparison:
        return Comparison(self.name, "<", value)

    def __le__(self, value) -> Comparison:
        return Comparison(self.name, "<=", value)

    def __gt__(self, value) -> Comparison:
        return Comparison(self.name, ">", value)

    def __ge__(self, value) -> Comparison:
        return Comparison(self.name, ">=", value)

    def between(self, lo, hi) -> Between:
        return Between(self.name, lo, hi)

    def isin(self, values) -> Comparison:
        return Comparison(self.name, "in", tuple(values))

    def contains(self, needle) -> Comparison:
        return Comparison(self.name, "contains", needle)

    def is_not_none(self) -> Comparison:
        return Comparison(self.name, "!=", None)

    __hash__ = None  # type: ignore[assignment]  # == builds expressions
