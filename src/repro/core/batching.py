"""Batch-size policy and re-chunking helpers.

Shared by the operator layer and the storage layer (the catalog cannot
import the operators package — scans import the catalog — so the policy
lives here, below both).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import QueryError

#: rows per batch when callers don't say otherwise
DEFAULT_BATCH_SIZE = 256


def slice_batches(rows, size: int):
    """Yield fixed-size slices of an in-memory sequence (the last may be
    short) — the one place the re-chunking policy lives."""
    if size < 1:
        raise QueryError(f"batch size must be positive, got {size}")
    for start in range(0, len(rows), size):
        yield rows[start : start + size]


def chunked(items: Iterable, size: int):
    """Yield lists of at most ``size`` items from any iterable — the
    accumulate-and-flush twin of :func:`slice_batches` for one-shot
    iterators that cannot be sliced."""
    if size < 1:
        raise QueryError(f"batch size must be positive, got {size}")
    chunk: list = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
