"""Named UDF registry shared by the fluent API and the LensQL frontend.

A :class:`UDFRegistry` maps names to :class:`UDFDefinition` records — the
scalar function, its optional vectorized ``batch_fn``, and the planner
contract (``provides``/``one_to_one``/``cache``) a ``map`` over it should
carry. Both frontends resolve a registered name to the *same* function
object, so

* plan fingerprints agree (:func:`repro.core.logical.callable_identity`
  keys on the function, not the frontend that named it), which keeps
  materialized-view matching working across SQL and fluent queries, and
* lineage-keyed UDF cache entries (including the catalog-persisted tier)
  are shared: inference cached by a SQL query is served to the fluent
  form and vice versa.

Sessions seed their registry with the built-in vision models
(:func:`default_registry`); :meth:`repro.core.session.DeepLens.
register_udf` adds user functions. :func:`attribute_key` is the shared
attribute-getter factory SQL aggregates bind (``COUNT(DISTINCT a)``,
``AVG(a)``) — memoized per attribute so fluent queries using the same
key compare fingerprint-equal, and portable so such fingerprints survive
sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.patch import Patch
from repro.errors import QueryError


@dataclass(frozen=True)
class UDFDefinition:
    """One registered UDF and the map contract queries apply it under."""

    name: str
    fn: Callable[[Patch], Any]
    batch_fn: Callable[[list[Patch]], list] | None = None
    #: the attributes the UDF writes (all others pass through) — None
    #: means undeclared, which blocks filter push-down below its maps
    provides: frozenset[str] | None = None
    one_to_one: bool = False
    #: whether maps over this UDF memoize results by patch lineage
    cache: bool = False


class UDFRegistry:
    """Name -> definition registry; shared by one session's frontends."""

    def __init__(self) -> None:
        self._defs: dict[str, UDFDefinition] = {}

    def register(
        self,
        name: str,
        fn: Callable[[Patch], Any],
        *,
        batch_fn: Callable[[list[Patch]], list] | None = None,
        provides: set[str] | frozenset[str] | None = None,
        one_to_one: bool = False,
        cache: bool = False,
        replace: bool = False,
    ) -> UDFDefinition:
        if not name or not isinstance(name, str):
            raise QueryError(f"UDF name must be a non-empty string, got {name!r}")
        if not callable(fn):
            raise QueryError(f"UDF {name!r} must be callable, got {type(fn).__name__}")
        if name in self._defs and not replace:
            raise QueryError(
                f"UDF {name!r} is already registered (pass replace=True)"
            )
        definition = UDFDefinition(
            name=name,
            fn=fn,
            batch_fn=batch_fn,
            provides=None if provides is None else frozenset(provides),
            one_to_one=one_to_one,
            cache=cache,
        )
        self._defs[name] = definition
        return definition

    def get(self, name: str) -> UDFDefinition:
        try:
            return self._defs[name]
        except KeyError:
            raise QueryError(
                f"no registered UDF {name!r}; have {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._defs)

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __len__(self) -> int:
        return len(self._defs)


# -- aggregate key functions ---------------------------------------------------


class AttributeKey:
    """A portable patch -> attribute getter.

    Instances advertise a stable ``__qualname__`` embedding the attribute
    name, so :func:`~repro.core.logical.callable_identity` gives two
    sessions' keys over the same attribute the same identity — SQL
    aggregate fingerprints therefore persist like named module-level
    functions do. A missing attribute reads as ``None`` (SQL NULL
    semantics: ``AVG`` skips it; ``COUNT(DISTINCT)`` folds all missing
    rows into at most one bucket) rather than aborting the query the way
    the fluent ``lambda patch: patch["attr"]`` idiom would.
    """

    def __init__(self, attr: str) -> None:
        self.attr = attr
        self.__qualname__ = f"AttributeKey[{attr}]"

    def __call__(self, patch: Patch) -> Any:
        return patch.get(self.attr)

    def __repr__(self) -> str:
        return f"AttributeKey({self.attr!r})"


_attribute_keys: dict[str, AttributeKey] = {}


def attribute_key(attr: str) -> AttributeKey:
    """The shared getter for ``attr`` (memoized: same attribute, same
    callable object, so plans comparing by callable identity match)."""
    key = _attribute_keys.get(attr)
    if key is None:
        key = _attribute_keys[attr] = AttributeKey(attr)
    return key


# -- built-in UDFs -------------------------------------------------------------
#
# Module-level named functions (portable identities: their cache entries
# and view fingerprints survive sessions). Models are lazy singletons so
# importing this module stays cheap.

_embedder = None


def _get_embedder():
    global _embedder
    if _embedder is None:
        from repro.vision.models.embeddings import TinyEmbedder

        _embedder = TinyEmbedder()
    return _embedder


def brightness(patch: Patch) -> Patch:
    """Annotate a patch with its mean pixel level (``brightness``)."""
    level = float(patch.data.mean()) if patch.data.size else 0.0
    return patch.derive(patch.data, "brightness", brightness=level)


def brightness_batch(patches: list[Patch]) -> list[Patch]:
    return [brightness(patch) for patch in patches]


def embedding(patch: Patch) -> Patch:
    """Annotate a patch with its TinyEmbedder descriptor (``embedding``)."""
    vector = _get_embedder().process(patch.data)
    return patch.derive(patch.data, "embed", embedding=np.asarray(vector))


def embedding_batch(patches: list[Patch]) -> list[Patch]:
    vectors = _get_embedder().embed_batch([patch.data for patch in patches])
    return [
        patch.derive(patch.data, "embed", embedding=np.asarray(vector))
        for patch, vector in zip(patches, vectors)
    ]


def embedding_features(patch: Patch) -> np.ndarray:
    """Feature extractor for ``SIMILARITY JOIN ... ON embedding_features``:
    the TinyEmbedder descriptor as a plain vector."""
    return np.asarray(_get_embedder().process(patch.data))


def default_registry() -> UDFRegistry:
    """A registry seeded with the built-in vision-model UDFs."""
    registry = UDFRegistry()
    registry.register(
        "brightness",
        brightness,
        batch_fn=brightness_batch,
        provides={"brightness"},
        one_to_one=True,
        cache=True,
    )
    registry.register(
        "embedding",
        embedding,
        batch_fn=embedding_batch,
        provides={"embedding"},
        one_to_one=True,
        cache=True,
    )
    registry.register("embedding_features", embedding_features)
    return registry
