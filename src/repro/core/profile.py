"""Runtime instrumentation: per-operator counters, Q-error, plan quality.

The planner (PRs 1-5) estimates cardinalities but never checks itself.
This module is the feedback half of that loop:

* :class:`OperatorProfile` — one physical operator's runtime counters
  (rows in/out, batches, wall time, cache hits, index probes), updated
  under a per-entry lock so parallel plans (worker pools, prefetch
  threads) never lose an update;
* :class:`RuntimeProfile` — one executed plan's profile: the operator
  entries in lowering order plus total wall time, threaded through
  :class:`~repro.core.executor.ExecutionContext` and rendered by
  ``explain(analyze=True)`` as estimated vs actual rows with the
  per-operator Q-error;
* :func:`q_error` — the standard cardinality-estimation scoreboard:
  ``max(est/actual, actual/est)`` with both sides floored at one row;
* :class:`PlanQualityLog` — the catalog-persisted history keyed by
  *parameterized* plan fingerprint, plus per-predicate observed
  selectivities that :meth:`~repro.core.optimizer.Optimizer.
  predicate_estimate` consults before the histogram/MCV path — repeated
  query shapes correct the independence assumption's worst misses.

Everything here is storage- and operator-agnostic (pure stdlib), so the
executor, the lowering, and the catalog can all import it freely.
"""

from __future__ import annotations

import threading
import time

#: bounded history: profiled runs retained per plan fingerprint
PLAN_HISTORY = 32
#: distinct plan fingerprints retained (oldest evicted first)
MAX_PLANS = 256
#: observed-selectivity samples retained per (collection, predicate)
PREDICATE_HISTORY = 32
#: distinct (collection, predicate) keys retained
MAX_PREDICATES = 1024


def q_error(est: float, actual: float) -> float:
    """The Q-error of one cardinality estimate: ``max(est/actual,
    actual/est)`` with both sides floored at one row, so empty results
    and zero estimates stay finite (1 row is the resolution limit of
    "how wrong can a plan decision get")."""
    e = max(float(est), 1.0)
    a = max(float(actual), 1.0)
    return max(e / a, a / e)


class OperatorProfile:
    """Runtime counters of one physical operator in one executed plan.

    Output rows/batches/time are counted by the
    :class:`~repro.core.operators.ProfiledOperator` wrapper driving the
    operator; input rows come either from the child entries (``children``)
    or, for leaf scan groups, from an
    :class:`~repro.core.operators.InputProbe` around the storage scan.
    All mutation happens under ``_lock`` — parallel plans drive different
    operators from different threads (prefetch producers, map workers),
    and the totals must be exact, not approximately right.
    """

    __slots__ = (
        "label",
        "est_rows",
        "children",
        "rows_out",
        "batches",
        "seconds",
        "cache_hits",
        "cache_misses",
        "index_probes",
        "blocks_skipped",
        "blocks_scanned",
        "est_blocks_skipped",
        "est_blocks_total",
        "ann_hops",
        "ann_candidates",
        "est_candidates",
        "exhausted",
        "feedback",
        "_rows_in",
        "_lock",
    )

    def __init__(
        self,
        label: str,
        *,
        est_rows: float | None = None,
        children: "list[OperatorProfile] | None" = None,
    ) -> None:
        self.label = label
        self.est_rows = est_rows
        self.children: list[OperatorProfile] = list(children or [])
        self.rows_out = 0
        self.batches = 0
        self.seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.index_probes = 0
        #: zone-map actuals, reported by the executing metadata scan —
        #: the planner's skip *estimate* rides in ``est_blocks_skipped``
        #: so the two can be graded against each other like a cardinality
        self.blocks_skipped = 0
        self.blocks_scanned = 0
        self.est_blocks_skipped: float | None = None
        self.est_blocks_total: float | None = None
        #: ANN probe actuals (graph hops / distance computations of the
        #: executing HNSW search) next to the cost model's candidate
        #: *estimate*, graded like a cardinality
        self.ann_hops = 0
        self.ann_candidates = 0
        self.est_candidates: float | None = None
        #: True once the operator's stream ran dry — only then is
        #: ``rows_out`` the full result cardinality (a limit above may
        #: stop the stream early, which must not be logged as the
        #: predicate's true selectivity)
        self.exhausted = False
        #: (collection, predicate signature key, base row count,
        #: collection version) for scan groups whose actual selectivity
        #: should feed the PlanQualityLog; the version dates each
        #: observation so corrections can expire once the collection
        #: mutates past them
        self.feedback: tuple[str, str, int, int] | None = None
        self._rows_in = 0
        self._lock = threading.Lock()

    # -- counting (called from whichever thread drives the operator) ------

    def add_batch(self, rows: int, seconds: float) -> None:
        with self._lock:
            self.rows_out += rows
            self.batches += 1
            self.seconds += seconds

    def add_rows(self, rows: int, seconds: float) -> None:
        with self._lock:
            self.rows_out += rows
            self.seconds += seconds

    def add_time(self, seconds: float) -> None:
        with self._lock:
            self.seconds += seconds

    def add_input(self, rows: int, *, index: bool = False) -> None:
        with self._lock:
            self._rows_in += rows
            if index:
                self.index_probes += rows

    def add_cache(self, hits: int, misses: int) -> None:
        with self._lock:
            self.cache_hits += hits
            self.cache_misses += misses

    def add_blocks(self, skipped: int, scanned: int) -> None:
        with self._lock:
            self.blocks_skipped += skipped
            self.blocks_scanned += scanned

    def set_block_estimate(self, skipped: float, total: float) -> None:
        self.est_blocks_skipped = float(skipped)
        self.est_blocks_total = float(total)

    def set_candidate_estimate(self, candidates: float) -> None:
        self.est_candidates = float(candidates)

    def add_ann(self, stats: dict) -> None:
        with self._lock:
            self.ann_hops += int(stats.get("hops", 0))
            self.ann_candidates += int(stats.get("candidates", 0))

    def mark_exhausted(self) -> None:
        with self._lock:
            self.exhausted = True

    def set_feedback(
        self, collection: str, expr_key: str, base_rows: int, version: int = 0
    ) -> None:
        self.feedback = (collection, expr_key, base_rows, version)

    # -- derived ----------------------------------------------------------

    @property
    def rows_in(self) -> int:
        """Input rows: the child entries' outputs, or (for leaf scan
        groups) the rows the storage layer actually produced."""
        if self.children:
            return sum(child.rows_out for child in self.children)
        return self._rows_in

    @property
    def q(self) -> float | None:
        """Q-error of this operator's row estimate, None when the
        lowering recorded no estimate for it."""
        if self.est_rows is None:
            return None
        return q_error(self.est_rows, self.rows_out)

    @property
    def candidates_q(self) -> float | None:
        """Q-error of the ANN candidate estimate (cost-model visited
        count vs distances actually computed), None when the planner made
        no candidate estimate for this operator."""
        if self.est_candidates is None:
            return None
        return q_error(self.est_candidates, self.ann_candidates)

    @property
    def blocks_q(self) -> float | None:
        """Q-error of the zone-map skip estimate, graded like a
        cardinality (floored at one block), None when the planner made
        no skip estimate for this operator."""
        if self.est_blocks_skipped is None:
            return None
        return q_error(self.est_blocks_skipped, self.blocks_skipped)

    def describe(self) -> str:
        est = "?" if self.est_rows is None else f"~{self.est_rows:.0f}"
        q = self.q
        q_part = "" if q is None else f", q-error {q:.2f}"
        parts = [
            f"{self.label}: est {est} rows, actual {self.rows_out} rows"
            f"{q_part}",
            f"in {self.rows_in}",
            f"{self.batches} batches",
            f"{self.seconds * 1000.0:.1f} ms",
        ]
        if self.cache_hits or self.cache_misses:
            parts.append(
                f"cache {self.cache_hits} hits / {self.cache_misses} misses"
            )
        if self.index_probes:
            parts.append(f"index probes {self.index_probes}")
        if self.est_candidates is not None or self.ann_candidates:
            segment = (
                f"ann {self.ann_candidates} candidates / "
                f"{self.ann_hops} hops"
            )
            if self.est_candidates is not None:
                segment += (
                    f" (est {self.est_candidates:.0f}, "
                    f"q-error {self.candidates_q:.2f})"
                )
            parts.append(segment)
        if (
            self.blocks_skipped
            or self.blocks_scanned
            or self.est_blocks_skipped is not None
        ):
            total = self.blocks_skipped + self.blocks_scanned
            segment = f"zone-map {self.blocks_skipped}/{total} blocks skipped"
            if self.est_blocks_skipped is not None:
                segment += (
                    f" (est {self.est_blocks_skipped:.0f}, "
                    f"q-error {self.blocks_q:.2f})"
                )
            parts.append(segment)
        return " | ".join(parts)


class RuntimeProfile:
    """The runtime profile of one executed plan.

    Lowering registers one :class:`OperatorProfile` per physical operator
    (bottom-up, so child entries precede their parents); execution fills
    the counters; :meth:`finish` stamps total wall time. Registration is
    locked for symmetry, though lowering itself is single-threaded — the
    *counter* locks are the ones parallel execution actually contends.
    """

    def __init__(self) -> None:
        self.entries: list[OperatorProfile] = []
        self.seconds: float | None = None
        self._lock = threading.Lock()
        self._start = time.perf_counter()

    def operator(
        self,
        label: str,
        *,
        est_rows: float | None = None,
        children: "list[OperatorProfile] | None" = None,
    ) -> OperatorProfile:
        entry = OperatorProfile(label, est_rows=est_rows, children=children)
        with self._lock:
            self.entries.append(entry)
        return entry

    def finish(self) -> None:
        self.seconds = time.perf_counter() - self._start

    def roots(self) -> list[OperatorProfile]:
        """Entries no other entry lists as a child (plan roots)."""
        child_ids = {
            id(child) for entry in self.entries for child in entry.children
        }
        return [entry for entry in self.entries if id(entry) not in child_ids]

    def q_errors(self) -> list[float]:
        """Every per-operator Q-error with a recorded estimate."""
        return [entry.q for entry in self.entries if entry.q is not None]

    def block_q_errors(self) -> list[float]:
        """Every zone-map skip-estimate Q-error with a recorded estimate."""
        return [
            entry.blocks_q
            for entry in self.entries
            if entry.blocks_q is not None
        ]

    def candidate_q_errors(self) -> list[float]:
        """Every ANN candidate-estimate Q-error with a recorded estimate."""
        return [
            entry.candidates_q
            for entry in self.entries
            if entry.candidates_q is not None
        ]

    def lines(self) -> list[str]:
        """Tree-rendered per-operator lines, outermost operator first."""
        out: list[str] = []

        def render(entry: OperatorProfile, depth: int) -> None:
            out.append("  " * depth + entry.describe())
            for child in entry.children:
                render(child, depth + 1)

        for root in reversed(self.roots()):  # registration is bottom-up
            render(root, 0)
        return out

    def __str__(self) -> str:
        total = "" if self.seconds is None else f" ({self.seconds * 1000.0:.1f} ms)"
        return "\n".join([f"runtime profile{total}:"] + [
            f"  {line}" for line in self.lines()
        ])


class PlanQualityLog:
    """Catalog-persisted estimate-vs-actual history and its feedback.

    ``record`` folds one finished :class:`RuntimeProfile` in under two
    keys: the *parameterized* plan fingerprint (literal constants
    stripped, so ``label = 'car'`` and ``label = 'bus'`` share one shape
    history), and — for fully-drained scan groups — the exact
    ``(collection, predicate signature)`` with the observed selectivity.
    ``correction`` serves the median observed selectivity back to the
    optimizer, which beats any independence-assumption product on a
    repeated predicate. Everything is bounded (history per key, key
    count) and serializes to plain lists for the catalog's kvstore.
    """

    def __init__(self) -> None:
        #: parameterized fingerprint -> runs; one run is a list of
        #: [label, est_rows, actual_rows] triples in lowering order
        self._plans: dict[str, list[list]] = {}
        #: (collection, predicate signature key) -> [est_sel, actual_sel,
        #: collection version] observations, oldest first (entries loaded
        #: from pre-version logs have only the two selectivities and read
        #: as version 0)
        self._predicates: dict[tuple[str, str], list[list[float]]] = {}
        self.dirty = False
        self._lock = threading.Lock()

    def record(self, fingerprint: str, profile: RuntimeProfile) -> None:
        """Fold one executed plan's profile into the log."""
        run = [
            [entry.label, float(entry.est_rows), float(entry.rows_out)]
            for entry in profile.entries
            if entry.est_rows is not None
        ]
        with self._lock:
            if fingerprint in self._plans:
                # refresh recency: dict order is the eviction order, so
                # re-inserting makes eviction drop the *least-recently-
                # updated* fingerprint — a hot recurring query can no
                # longer be evicted by a burst of one-off queries
                self._plans[fingerprint] = self._plans.pop(fingerprint)
            elif len(self._plans) >= MAX_PLANS:
                self._plans.pop(next(iter(self._plans)))
            history = self._plans.setdefault(fingerprint, [])
            history.append(run)
            del history[:-PLAN_HISTORY]
            for entry in profile.entries:
                if entry.feedback is None or not entry.exhausted:
                    continue
                collection, expr_key, base_rows = entry.feedback[:3]
                version = entry.feedback[3] if len(entry.feedback) > 3 else 0
                if base_rows <= 0:
                    continue
                key = (collection, expr_key)
                if key in self._predicates:
                    # same least-recently-updated discipline as plans
                    self._predicates[key] = self._predicates.pop(key)
                elif len(self._predicates) >= MAX_PREDICATES:
                    self._predicates.pop(next(iter(self._predicates)))
                observations = self._predicates.setdefault(key, [])
                observations.append(
                    [
                        float(entry.est_rows or 0.0) / base_rows,
                        float(entry.rows_out) / base_rows,
                        float(version),
                    ]
                )
                del observations[:-PREDICATE_HISTORY]
            self.dirty = True

    def correction(
        self,
        collection: str,
        expr_key: str,
        *,
        current_version: int | None = None,
        staleness: int | None = None,
    ) -> float | None:
        """Median observed selectivity of a predicate over a collection,
        or None when this exact shape was never profiled to completion.

        With ``current_version`` and ``staleness`` set, observations
        recorded more than ``staleness`` collection mutations ago are
        considered expired; when **every** observation has expired, the
        correction abstains (returns None) so fresher statistics decide.
        Recent observations keep the whole history alive — the median
        still pools old runs, since the predicate evidently still holds.
        """
        with self._lock:
            observations = self._predicates.get((collection, expr_key))
            if not observations:
                return None
            if current_version is not None and staleness is not None:
                if all(
                    current_version - (obs[2] if len(obs) > 2 else 0)
                    > staleness
                    for obs in observations
                ):
                    return None
            actuals = sorted(obs[1] for obs in observations)
            return actuals[len(actuals) // 2]

    def has_predicate_history(self, collection: str, expr_key: str) -> bool:
        """Whether this predicate shape was ever profiled to completion
        (distinguishes a :meth:`correction` abstention from no history)."""
        with self._lock:
            return bool(self._predicates.get((collection, expr_key)))

    def history(self, fingerprint: str) -> list[list]:
        """Recorded runs for one parameterized plan fingerprint."""
        with self._lock:
            return [list(run) for run in self._plans.get(fingerprint, [])]

    def plan_q_errors(self) -> list[float]:
        """Q-errors of every recorded operator estimate, across plans."""
        with self._lock:
            return [
                q_error(est, actual)
                for runs in self._plans.values()
                for run in runs
                for _, est, actual in run
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    # -- persistence ------------------------------------------------------

    def to_value(self) -> dict:
        with self._lock:
            return {
                "plans": [
                    [fingerprint, [list(map(list, run)) for run in runs]]
                    for fingerprint, runs in self._plans.items()
                ],
                "predicates": [
                    [collection, expr_key, [list(obs) for obs in observations]]
                    for (collection, expr_key), observations
                    in self._predicates.items()
                ],
            }

    @classmethod
    def from_value(cls, value: dict) -> "PlanQualityLog":
        log = cls()
        log._plans = {
            fingerprint: [list(run) for run in runs]
            for fingerprint, runs in value.get("plans", [])
        }
        log._predicates = {
            (collection, expr_key): [list(obs) for obs in observations]
            for collection, expr_key, observations in value.get("predicates", [])
        }
        return log
