"""The type system (Section 4.2).

"The entire API in DeepLens is typed, which allows us to validate
pipelines ... Beyond the standard int, float, string types, our type
system maintains the resolution and dimensions of each patch ... We also
include the domains of any discrete metadata created when available."

A :class:`PatchSchema` describes one patch collection: the kind and shape
of the ``data`` payload plus a field catalogue for the metadata dictionary.
Closed label worlds (e.g. the detector's ``{vehicle, person}``) let
:func:`validate_filter_constant` reject filters that can never match —
"any downstream operator (e.g., filter) that consumes those labels can be
validated to see if that label is plausibly produced by the pipeline."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import SchemaError, ValidationError
from repro.core.patch import Patch

_PY_KINDS = {
    "int": (int, np.integer),
    "float": (float, int, np.floating, np.integer),
    "str": (str,),
    "bool": (bool, np.bool_),
    "bbox": (tuple, list),
    "vector": (np.ndarray, tuple, list),
    "any": (object,),
}


@dataclass(frozen=True)
class Field:
    """One metadata attribute: a name, a kind, an optional closed domain."""

    name: str
    kind: str  # one of _PY_KINDS
    domain: frozenset | None = None  # closed world of values, if known
    required: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _PY_KINDS:
            raise SchemaError(
                f"unknown field kind {self.kind!r}; expected one of "
                f"{sorted(_PY_KINDS)}"
            )

    def check_value(self, value) -> None:
        if value is None:
            if self.required:
                raise ValidationError(f"field {self.name!r} is required")
            return
        if not isinstance(value, _PY_KINDS[self.kind]):
            raise ValidationError(
                f"field {self.name!r} expects kind {self.kind!r}, got "
                f"{type(value).__name__}"
            )
        if self.kind == "bbox" and len(value) != 4:
            raise ValidationError(
                f"field {self.name!r} expects a 4-tuple bbox, got {value!r}"
            )
        if self.domain is not None and value not in self.domain:
            raise ValidationError(
                f"value {value!r} outside the closed domain of field "
                f"{self.name!r} ({sorted(self.domain)})"
            )


@dataclass(frozen=True)
class PatchSchema:
    """Type of a patch collection."""

    #: 'pixels' (uint8 image) or 'features' (float vector)
    data_kind: str = "pixels"
    #: fixed (height, width) for pixels, when the producer guarantees one
    resolution: tuple[int, int] | None = None
    #: feature dimensionality for 'features' data
    dim: int | None = None
    fields: dict[str, Field] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.data_kind not in ("pixels", "features"):
            raise SchemaError(
                f"data_kind must be 'pixels' or 'features', got {self.data_kind!r}"
            )

    # -- evolution --------------------------------------------------------

    def with_field(self, new_field: Field) -> "PatchSchema":
        fields = dict(self.fields)
        fields[new_field.name] = new_field
        return replace(self, fields=fields)

    def with_fields(self, *new_fields: Field) -> "PatchSchema":
        schema = self
        for f in new_fields:
            schema = schema.with_field(f)
        return schema

    def as_features(self, dim: int) -> "PatchSchema":
        return replace(self, data_kind="features", dim=dim, resolution=None)

    # -- checks -------------------------------------------------------------

    def field(self, name: str) -> Field:
        try:
            return self.fields[name]
        except KeyError:
            raise SchemaError(
                f"no field {name!r} in schema (have {sorted(self.fields)})"
            ) from None

    def validate_patch(self, patch: Patch) -> None:
        """Check one patch against this schema; raises ValidationError."""
        data = patch.data
        if self.data_kind == "pixels":
            if data.ndim not in (2, 3):
                raise ValidationError(
                    f"pixel patch must be 2-D or 3-D, got shape {data.shape}"
                )
            if self.resolution is not None and data.shape[:2] != self.resolution:
                raise ValidationError(
                    f"patch resolution {data.shape[:2]} differs from the "
                    f"declared {self.resolution}"
                )
        else:
            if data.ndim != 1:
                raise ValidationError(
                    f"feature patch must be 1-D, got shape {data.shape}"
                )
            if self.dim is not None and data.shape[0] != self.dim:
                raise ValidationError(
                    f"feature dim {data.shape[0]} differs from the declared {self.dim}"
                )
        for schema_field in self.fields.values():
            schema_field.check_value(patch.metadata.get(schema_field.name))


def validate_filter_constant(schema: PatchSchema, attr: str, value) -> None:
    """Reject filters whose constant can never be produced upstream.

    The Section 4.2 example: an object-detection network has a closed world
    of labels; filtering on a label outside it is a type error, not an
    empty result.
    """
    if attr not in schema.fields:
        return  # open metadata: nothing to check against
    schema_field = schema.fields[attr]
    if schema_field.domain is not None and value not in schema_field.domain:
        raise ValidationError(
            f"filter constant {value!r} is outside the closed domain of "
            f"{attr!r}; upstream can only produce {sorted(schema_field.domain)}"
        )


def frame_schema(resolution: tuple[int, int] | None = None) -> PatchSchema:
    """Schema of loader output: whole frames with source/frameno."""
    return PatchSchema(
        data_kind="pixels",
        resolution=resolution,
        fields={
            "source": Field("source", "str", required=True),
            "frameno": Field("frameno", "int", required=True),
        },
    )
