"""Exception hierarchy for the DeepLens reproduction.

Every error raised by the library derives from :class:`DeepLensError` so
applications can catch library failures with a single ``except`` clause while
still distinguishing subsystems when they need to.
"""

from __future__ import annotations


class DeepLensError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(DeepLensError):
    """A failure in the persistent storage layer (pager, B+ tree, formats)."""


class PageError(StorageError):
    """An invalid page id, page overflow, or corrupted page image."""


class CorruptionError(StorageError):
    """On-disk bytes failed validation: a checksum mismatch, a torn or
    truncated structure, or undecodable content.

    ``file`` and ``offset`` position the damage so operators can inspect
    (or restore) the right region instead of chasing an opaque
    ``struct``/``zlib`` traceback. ``str()`` renders both when known.
    """

    def __init__(
        self,
        message: str,
        *,
        file: str | None = None,
        offset: int | None = None,
    ) -> None:
        self.file = file
        self.offset = offset
        location = ""
        if file is not None:
            location = f" [{file}"
            if offset is not None:
                location += f" @ offset {offset}"
            location += "]"
        super().__init__(f"{message}{location}")


class KeyNotFoundError(StorageError, KeyError):
    """A point lookup referenced a key that is not present."""


class DuplicateKeyError(StorageError):
    """An insert would violate a unique-key constraint."""


class CodecError(StorageError):
    """Encoding or decoding a video stream failed."""


class RandomAccessUnsupportedError(CodecError):
    """A random-access read was attempted on a sequential-only encoding.

    Raised by the Encoded File format when a caller asks to seek directly to
    a frame: the paper's point (Section 7.1) is that sequential codecs cannot
    support temporal filter push-down, so DeepLens surfaces the limitation
    explicitly rather than silently scanning.
    """


class IndexError_(DeepLensError):
    """A failure in an index structure (named with a trailing underscore to
    avoid shadowing the :class:`IndexError` builtin)."""


class SchemaError(DeepLensError):
    """A pipeline or query failed type validation (Section 4.2)."""


class ValidationError(SchemaError):
    """An operator consumes values outside its input domain, e.g. filtering
    on a label that no upstream generator can produce."""


class QueryError(DeepLensError):
    """A malformed logical query or an unsupported physical plan request."""


def annotate_source(
    source: str, line: int, column: int, length: int = 1
) -> str:
    """A caret-annotated excerpt of ``source`` at (1-based) line/column.

    Shared by the LensQL frontend's positioned errors so every lexer,
    parser, and binder failure points at the offending characters::

        SELECT label FROM detections WHRE label = 'car'
                                     ^^^^
    """
    lines = source.splitlines() or [""]
    index = min(max(line, 1), len(lines)) - 1
    text = lines[index]
    caret_at = min(max(column, 1), len(text) + 1) - 1
    width = max(min(length, len(text) - caret_at + 1), 1)
    return f"{text}\n{' ' * caret_at}{'^' * width}"


class PositionedQueryError(QueryError):
    """A query-text failure that knows where in the source it happened.

    ``line``/``column`` are 1-based; ``excerpt`` is the offending source
    line with a caret underneath, and ``str()`` renders all of it.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str = "",
        line: int = 1,
        column: int = 1,
        length: int = 1,
    ) -> None:
        self.message = message
        self.source = source
        self.line = line
        self.column = column
        self.length = length
        self.excerpt = annotate_source(source, line, column, length)
        super().__init__(
            f"{message} (line {line}, column {column})\n{self.excerpt}"
        )


class ParseError(PositionedQueryError):
    """LensQL text failed to lex or parse."""


class BindError(PositionedQueryError):
    """A parsed LensQL statement referenced an unknown collection, view,
    attribute side, or UDF — or used a construct the catalog cannot
    satisfy."""


class OptimizerError(QueryError):
    """The optimizer could not produce a physical plan."""


class LineageError(DeepLensError):
    """A lineage backtrace referenced an unknown patch or broken chain."""


class ETLError(DeepLensError):
    """A patch generator or transformer failed."""


class DatasetError(DeepLensError):
    """A synthetic dataset generator was misconfigured."""


class DeviceError(DeepLensError):
    """An execution-backend (CPU/AVX/GPU) failure or unknown device name."""
