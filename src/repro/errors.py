"""Exception hierarchy for the DeepLens reproduction.

Every error raised by the library derives from :class:`DeepLensError` so
applications can catch library failures with a single ``except`` clause while
still distinguishing subsystems when they need to.
"""

from __future__ import annotations


class DeepLensError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(DeepLensError):
    """A failure in the persistent storage layer (pager, B+ tree, formats)."""


class PageError(StorageError):
    """An invalid page id, page overflow, or corrupted page image."""


class KeyNotFoundError(StorageError, KeyError):
    """A point lookup referenced a key that is not present."""


class DuplicateKeyError(StorageError):
    """An insert would violate a unique-key constraint."""


class CodecError(StorageError):
    """Encoding or decoding a video stream failed."""


class RandomAccessUnsupportedError(CodecError):
    """A random-access read was attempted on a sequential-only encoding.

    Raised by the Encoded File format when a caller asks to seek directly to
    a frame: the paper's point (Section 7.1) is that sequential codecs cannot
    support temporal filter push-down, so DeepLens surfaces the limitation
    explicitly rather than silently scanning.
    """


class IndexError_(DeepLensError):
    """A failure in an index structure (named with a trailing underscore to
    avoid shadowing the :class:`IndexError` builtin)."""


class SchemaError(DeepLensError):
    """A pipeline or query failed type validation (Section 4.2)."""


class ValidationError(SchemaError):
    """An operator consumes values outside its input domain, e.g. filtering
    on a label that no upstream generator can produce."""


class QueryError(DeepLensError):
    """A malformed logical query or an unsupported physical plan request."""


class OptimizerError(QueryError):
    """The optimizer could not produce a physical plan."""


class LineageError(DeepLensError):
    """A lineage backtrace referenced an unknown patch or broken chain."""


class ETLError(DeepLensError):
    """A patch generator or transformer failed."""


class DatasetError(DeepLensError):
    """A synthetic dataset generator was misconfigured."""


class DeviceError(DeepLensError):
    """An execution-backend (CPU/AVX/GPU) failure or unknown device name."""
