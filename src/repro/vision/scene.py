"""Synthetic scene model.

A :class:`Scene` is the ground-truth world behind every synthetic dataset:
typed objects (vehicles, pedestrians, players, text blocks) with per-frame
states (position, apparent size, metric depth). The renderer turns scenes
into pixel frames; the datasets keep the scene around as ground truth for
accuracy metrics (Figure 2, Table 1).

Geometry uses a one-parameter pinhole camera: an object of real height
``H`` metres at depth ``d`` appears ``focal * H / d`` pixels tall with its
foot-line at ``horizon_y + focal * cam_height / d``. The depth *model*
(:mod:`repro.vision.models.depth`) estimates depth by inverting exactly
this projection from observed pixels — it never reads the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DatasetError


@dataclass(frozen=True)
class Camera:
    """Minimal pinhole ground-plane camera."""

    horizon_y: float  # pixel row of the horizon
    focal: float  # pixels per (metre / metre-of-depth)
    cam_height: float  # metres above the ground plane

    def place(
        self,
        depth: float,
        lateral: float,
        real_width: float,
        real_height: float,
        frame_width: int,
    ) -> tuple[float, float, float, float]:
        """Project an object to pixel space.

        Returns ``(cx, cy, width_px, height_px)`` for an object of real size
        ``real_width x real_height`` metres standing on the ground plane at
        ``depth`` metres, offset ``lateral`` metres from the optical axis.
        """
        if depth <= 0:
            raise DatasetError(f"object depth must be positive, got {depth}")
        scale = self.focal / depth
        width_px = real_width * scale
        height_px = real_height * scale
        y_bottom = self.horizon_y + self.cam_height * scale
        cx = frame_width / 2.0 + lateral * scale
        cy = y_bottom - height_px / 2.0
        return cx, cy, width_px, height_px

    def depth_from_foot(self, y_bottom: float) -> float:
        """Invert the projection: metric depth from a foot-line pixel row."""
        drop = y_bottom - self.horizon_y
        if drop <= 0:
            raise DatasetError(
                f"foot-line {y_bottom} is above the horizon {self.horizon_y}"
            )
        return self.focal * self.cam_height / drop


@dataclass(frozen=True)
class ObjectState:
    """Where one object is in one frame."""

    frame: int
    cx: float
    cy: float
    width: float
    height: float
    depth: float

    def bbox(self) -> tuple[int, int, int, int]:
        """Integer (x1, y1, x2, y2) pixel bounding box."""
        x1 = int(round(self.cx - self.width / 2.0))
        y1 = int(round(self.cy - self.height / 2.0))
        x2 = int(round(self.cx + self.width / 2.0))
        y2 = int(round(self.cy + self.height / 2.0))
        return (x1, y1, x2, y2)


@dataclass
class SceneObject:
    """One identity across the whole scene."""

    object_id: str
    category: str  # 'vehicle' | 'person' | 'text'
    color: tuple[int, int, int]
    states: dict[int, ObjectState] = field(default_factory=dict)
    label_text: str | None = None  # jersey number / document string
    secondary_color: tuple[int, int, int] | None = None

    def state_at(self, frame: int) -> ObjectState | None:
        return self.states.get(frame)


@dataclass(frozen=True)
class GroundTruthBox:
    """One annotation: the truth a perfect detector would output."""

    frame: int
    object_id: str
    category: str
    bbox: tuple[int, int, int, int]
    depth: float
    text: str | None = None


class Scene:
    """A camera, a frame count, and the objects that inhabit the video."""

    def __init__(
        self,
        width: int,
        height: int,
        n_frames: int,
        camera: Camera | None = None,
        name: str = "scene",
    ) -> None:
        if width <= 0 or height <= 0 or n_frames <= 0:
            raise DatasetError(
                f"scene dimensions must be positive, got {width}x{height}x{n_frames}"
            )
        self.width = width
        self.height = height
        self.n_frames = n_frames
        self.name = name
        self.camera = camera or Camera(
            horizon_y=height * 0.25, focal=height * 1.2, cam_height=5.0
        )
        self.objects: list[SceneObject] = []

    def add(self, obj: SceneObject) -> SceneObject:
        self.objects.append(obj)
        return obj

    def objects_at(self, frame: int) -> list[tuple[SceneObject, ObjectState]]:
        """Objects visible in ``frame``, farthest first (painter's order)."""
        present = [
            (obj, state)
            for obj in self.objects
            if (state := obj.state_at(frame)) is not None
        ]
        present.sort(key=lambda pair: -pair[1].depth)
        return present

    def ground_truth(self, frame: int) -> list[GroundTruthBox]:
        """Annotations for every object whose box intersects the frame."""
        out = []
        for obj, state in self.objects_at(frame):
            x1, y1, x2, y2 = state.bbox()
            x1c, y1c = max(x1, 0), max(y1, 0)
            x2c, y2c = min(x2, self.width), min(y2, self.height)
            if x2c <= x1c or y2c <= y1c:
                continue
            out.append(
                GroundTruthBox(
                    frame=frame,
                    object_id=obj.object_id,
                    category=obj.category,
                    bbox=(x1c, y1c, x2c, y2c),
                    depth=state.depth,
                    text=obj.label_text,
                )
            )
        return out

    def all_ground_truth(self) -> list[GroundTruthBox]:
        return [box for frame in range(self.n_frames) for box in self.ground_truth(frame)]


def linear_states(
    camera: Camera,
    frame_width: int,
    frames: range,
    *,
    depth0: float,
    depth1: float,
    lateral0: float,
    lateral1: float,
    real_width: float,
    real_height: float,
) -> dict[int, ObjectState]:
    """States for an object moving linearly in world space across ``frames``."""
    steps = max(len(frames) - 1, 1)
    states: dict[int, ObjectState] = {}
    for i, frame in enumerate(frames):
        t = i / steps
        depth = depth0 + (depth1 - depth0) * t
        lateral = lateral0 + (lateral1 - lateral0) * t
        cx, cy, width_px, height_px = camera.place(
            depth, lateral, real_width, real_height, frame_width
        )
        states[frame] = ObjectState(
            frame=frame, cx=cx, cy=cy, width=width_px, height=height_px, depth=depth
        )
    return states
