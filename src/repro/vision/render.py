"""Scene renderer.

Turns a :class:`~repro.vision.scene.Scene` into uint8 RGB frames. The
rendering contract the detector substrate depends on:

* **backgrounds are low-saturation** — smooth gradients with fixed-pattern
  texture (the same every frame, so the inter-frame codec's residuals stay
  near zero, as with a mounted CCTV camera);
* **objects are high-saturation** — each identity gets its own saturated
  fill colour, so colour-saturation segmentation finds them and colour
  histograms distinguish identities;
* objects are drawn far-to-near (painter's algorithm), so occlusion is
  physical, and each category has a distinct silhouette (vehicles squat,
  persons tall, text blocks flat and light).

These properties are *why* the SyntheticSSD substitution is faithful: lossy
encoding really attenuates the saturation and edges the detector keys on.
"""

from __future__ import annotations

import numpy as np

from repro.vision import glyphs
from repro.vision.scene import ObjectState, Scene, SceneObject


class Renderer:
    """Deterministic rasterizer for scenes."""

    def __init__(
        self,
        scene: Scene,
        *,
        seed: int = 0,
        texture_amplitude: float = 6.0,
        temporal_noise: float = 0.0,
    ) -> None:
        self.scene = scene
        self.seed = seed
        self.temporal_noise = temporal_noise
        self._background = self._make_background(texture_amplitude)

    def _make_background(self, amplitude: float) -> np.ndarray:
        height, width = self.scene.height, self.scene.width
        rng = np.random.default_rng(self.seed)
        yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
        # Sky-to-road vertical gradient, slightly blue above the horizon.
        horizon = self.scene.camera.horizon_y
        base = np.where(yy < horizon, 150.0 - 0.15 * yy, 110.0 - 0.05 * yy)
        texture = (
            amplitude * np.sin(xx / 13.0 + rng.uniform(0, 6.28))
            + amplitude * 0.7 * np.cos(yy / 9.0 + rng.uniform(0, 6.28))
            + rng.normal(0.0, amplitude * 0.25, size=(height, width))
        )
        gray = base + texture
        background = np.stack(
            [gray * 0.98, gray * 1.0, np.where(yy < horizon, gray * 1.08, gray * 0.97)],
            axis=2,
        )
        return np.clip(background, 0, 255)

    def render(self, frame_idx: int) -> np.ndarray:
        """Rasterize one frame (uint8, (H, W, 3))."""
        canvas = self._background.copy()
        for obj, state in self.scene.objects_at(frame_idx):
            self._draw_object(canvas, obj, state)
        if self.temporal_noise > 0:
            rng = np.random.default_rng((self.seed, frame_idx))
            canvas = canvas + rng.normal(0, self.temporal_noise, canvas.shape)
        return np.clip(canvas, 0, 255).astype(np.uint8)

    def render_all(self):
        """Yield every frame of the scene in order."""
        for frame_idx in range(self.scene.n_frames):
            yield self.render(frame_idx)

    # -- drawing ------------------------------------------------------------

    def _draw_object(
        self, canvas: np.ndarray, obj: SceneObject, state: ObjectState
    ) -> None:
        x1, y1, x2, y2 = state.bbox()
        x1, y1 = max(x1, 0), max(y1, 0)
        x2, y2 = min(x2, canvas.shape[1]), min(y2, canvas.shape[0])
        if x2 <= x1 or y2 <= y1:
            return
        if obj.category == "vehicle":
            self._draw_vehicle(canvas, obj, (x1, y1, x2, y2))
        elif obj.category == "person":
            self._draw_person(canvas, obj, (x1, y1, x2, y2))
        elif obj.category == "text":
            self._draw_text_block(canvas, obj, (x1, y1, x2, y2))
        else:
            _fill_rect(canvas, (x1, y1, x2, y2), obj.color)

    def _draw_vehicle(
        self, canvas: np.ndarray, obj: SceneObject, box: tuple[int, int, int, int]
    ) -> None:
        x1, y1, x2, y2 = box
        height = y2 - y1
        _fill_rect(canvas, box, obj.color, shade=True)
        # cabin: a lighter strip across the upper third
        cabin = (x1 + (x2 - x1) // 6, y1, x2 - (x2 - x1) // 6, y1 + max(height // 3, 1))
        _fill_rect(canvas, cabin, _lighten(obj.color, 1.35))
        # wheels: two dark blobs on the lower edge
        wheel_h = max(height // 5, 1)
        wheel_w = max((x2 - x1) // 6, 1)
        _fill_rect(canvas, (x1 + wheel_w, y2 - wheel_h, x1 + 2 * wheel_w, y2), (30, 30, 34))
        _fill_rect(canvas, (x2 - 2 * wheel_w, y2 - wheel_h, x2 - wheel_w, y2), (30, 30, 34))

    def _draw_person(
        self, canvas: np.ndarray, obj: SceneObject, box: tuple[int, int, int, int]
    ) -> None:
        x1, y1, x2, y2 = box
        height, width = y2 - y1, x2 - x1
        head_h = max(height // 4, 1)
        # torso
        _fill_rect(canvas, (x1, y1 + head_h, x2, y2), obj.color, shade=True)
        # head: skin-toned block narrower than the torso
        head_margin = max(width // 4, 0)
        _fill_rect(
            canvas,
            (x1 + head_margin, y1, x2 - head_margin, y1 + head_h),
            obj.secondary_color or (224, 172, 138),
        )
        if obj.label_text and height >= 24 and width >= 12:
            scale = max(1, width // (len(obj.label_text) * glyphs.GLYPH_W + 4))
            text_w = (glyphs.GLYPH_W + 1) * len(obj.label_text) * scale
            glyphs.stamp_text(
                canvas_uint8_view(canvas),
                obj.label_text,
                x1 + max((width - text_w) // 2, 0),
                y1 + head_h + max(height // 8, 1),
                scale=scale,
                color=(250, 250, 250),
            )

    def _draw_text_block(
        self, canvas: np.ndarray, obj: SceneObject, box: tuple[int, int, int, int]
    ) -> None:
        x1, y1, x2, y2 = box
        _fill_rect(canvas, box, obj.color)
        if obj.label_text:
            glyphs.stamp_text(
                canvas_uint8_view(canvas),
                obj.label_text,
                x1 + 2,
                y1 + 2,
                scale=max(1, (y2 - y1 - 4) // glyphs.GLYPH_H),
                color=(25, 25, 30),
            )


def canvas_uint8_view(canvas: np.ndarray) -> np.ndarray:
    """Glyph stamping works on any numeric canvas; float canvases pass through."""
    return canvas


def _fill_rect(
    canvas: np.ndarray,
    box: tuple[int, int, int, int],
    color: tuple[int, int, int],
    *,
    shade: bool = False,
) -> None:
    x1, y1, x2, y2 = box
    x1, y1 = max(x1, 0), max(y1, 0)
    x2, y2 = min(x2, canvas.shape[1]), min(y2, canvas.shape[0])
    if x2 <= x1 or y2 <= y1:
        return
    block = np.empty((y2 - y1, x2 - x1, 3), dtype=np.float64)
    for channel in range(3):
        block[:, :, channel] = color[channel]
    if shade:
        # vertical shading makes the fill less flat, so DCT blocks carry
        # a little genuine signal instead of a single DC coefficient
        ramp = np.linspace(0.92, 1.08, y2 - y1)[:, None, None]
        block = block * ramp
    canvas[y1:y2, x1:x2] = np.clip(block, 0, 255)


def _lighten(color: tuple[int, int, int], factor: float) -> tuple[int, int, int]:
    return tuple(int(min(channel * factor, 255)) for channel in color)
