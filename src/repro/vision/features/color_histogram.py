"""Colour-histogram features.

The paper's image-matching transformer of record: "we consider two
transformers: color histogram features for image matching and a depth
prediction neural network" (Section 4.1), and Example 2 builds "a KD-Tree
over a set of color histograms". Two variants:

* :func:`color_histogram` — the joint RGB histogram (``bins**3`` dims, 64-d
  at the default 4 bins), the high-dimensional feature used for matching;
* :func:`marginal_histogram` — three per-channel histograms concatenated
  (``3 * bins`` dims), a cheaper low-dimensional alternative.

Both are L1-normalized then square-rooted (the Hellinger/Bhattacharyya
mapping), which makes plain Euclidean distance on the features behave like
a proper histogram divergence — exactly what the Ball-tree's metric needs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ETLError


def color_histogram(patch: np.ndarray, bins: int = 4) -> np.ndarray:
    """Joint RGB histogram of a uint8 patch as a unit-mass sqrt vector."""
    if bins < 2 or bins > 16:
        raise ETLError(f"histogram bins must be in 2..16, got {bins}")
    pixels = _as_pixels(patch)
    quantized = (pixels.astype(np.uint16) * bins) // 256  # (n, 3) in [0, bins)
    flat = (
        quantized[:, 0] * bins * bins + quantized[:, 1] * bins + quantized[:, 2]
    )
    counts = np.bincount(flat, minlength=bins**3).astype(np.float64)
    return _hellinger(counts)


def color_histogram_soft(patch: np.ndarray, bins: int = 4) -> np.ndarray:
    """Joint RGB histogram with trilinear soft assignment.

    Hard binning has a cliff: a small global exposure shift can move an
    entire image's mass across a bin edge, making a near-duplicate look
    maximally distant. Soft assignment splits each pixel's mass between
    the two nearest bins per channel, so feature distance varies smoothly
    with photometric perturbations — the property near-duplicate search
    (q1) needs.
    """
    if bins < 2 or bins > 16:
        raise ETLError(f"histogram bins must be in 2..16, got {bins}")
    pixels = _as_pixels(patch).astype(np.float64)
    # continuous bin coordinate in [0, bins-1]
    coord = pixels / 256.0 * bins - 0.5
    lo = np.clip(np.floor(coord).astype(int), 0, bins - 1)
    hi = np.clip(lo + 1, 0, bins - 1)
    frac = np.clip(coord - lo, 0.0, 1.0)
    counts = np.zeros(bins**3, dtype=np.float64)
    # accumulate the 8 trilinear corners
    for r_bin, r_w in ((lo[:, 0], 1 - frac[:, 0]), (hi[:, 0], frac[:, 0])):
        for g_bin, g_w in ((lo[:, 1], 1 - frac[:, 1]), (hi[:, 1], frac[:, 1])):
            for b_bin, b_w in ((lo[:, 2], 1 - frac[:, 2]), (hi[:, 2], frac[:, 2])):
                flat = r_bin * bins * bins + g_bin * bins + b_bin
                np.add.at(counts, flat, r_w * g_w * b_w)
    return _hellinger(counts)


def marginal_histogram(patch: np.ndarray, bins: int = 8) -> np.ndarray:
    """Concatenated per-channel histograms (3 * bins dims)."""
    if bins < 2 or bins > 64:
        raise ETLError(f"histogram bins must be in 2..64, got {bins}")
    pixels = _as_pixels(patch)
    parts = []
    for channel in range(3):
        quantized = (pixels[:, channel].astype(np.uint16) * bins) // 256
        parts.append(np.bincount(quantized, minlength=bins).astype(np.float64))
    return _hellinger(np.concatenate(parts))


def histogram_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two Hellinger-mapped histograms."""
    return float(np.linalg.norm(a - b))


def _as_pixels(patch: np.ndarray) -> np.ndarray:
    patch = np.asarray(patch)
    if patch.ndim == 2:
        patch = np.stack([patch] * 3, axis=2)
    if patch.ndim != 3 or patch.shape[2] != 3:
        raise ETLError(f"expected an (H, W, 3) patch, got shape {patch.shape}")
    if patch.size == 0:
        raise ETLError("cannot compute a histogram of an empty patch")
    return patch.reshape(-1, 3)


def _hellinger(counts: np.ndarray) -> np.ndarray:
    total = counts.sum()
    if total <= 0:
        raise ETLError("histogram has no mass")
    return np.sqrt(counts / total)
