"""Histogram-of-oriented-gradients features.

A second, texture-sensitive featurizer: colour histograms cannot separate
two same-coloured objects with different structure, so the ETL library also
offers a light HOG variant (grid of orientation histograms over Sobel
gradients). Used by examples and tests that need shape-aware matching.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import ETLError


def gradient_histogram(
    patch: np.ndarray,
    *,
    grid: int = 2,
    orientations: int = 8,
    min_magnitude: float = 24.0,
) -> np.ndarray:
    """HOG-style descriptor: ``grid x grid`` cells of orientation histograms.

    Gradients below ``min_magnitude`` are discarded: on images with large
    flat regions (documents, UI screenshots) sensor noise otherwise
    dominates the orientation statistics, making two noisy copies of the
    same image look structurally different. The floor sits above the Sobel
    response of a few-sigma noise grain and below any real edge.

    Returns an L2-normalized vector of ``grid * grid * orientations`` dims.
    """
    if grid < 1 or grid > 8:
        raise ETLError(f"grid must be in 1..8, got {grid}")
    if orientations < 2 or orientations > 36:
        raise ETLError(f"orientations must be in 2..36, got {orientations}")
    gray = np.asarray(patch, dtype=np.float64)
    if gray.ndim == 3:
        gray = gray.mean(axis=2)
    if gray.shape[0] < grid or gray.shape[1] < grid:
        raise ETLError(
            f"patch {gray.shape} smaller than the {grid}x{grid} descriptor grid"
        )
    gx = ndimage.sobel(gray, axis=1)
    gy = ndimage.sobel(gray, axis=0)
    magnitude = np.hypot(gx, gy)
    magnitude = np.where(magnitude >= min_magnitude, magnitude, 0.0)
    angle = np.mod(np.arctan2(gy, gx), np.pi)  # unsigned orientation
    bin_index = np.minimum(
        (angle / np.pi * orientations).astype(int), orientations - 1
    )

    height, width = gray.shape
    row_edges = np.linspace(0, height, grid + 1).astype(int)
    col_edges = np.linspace(0, width, grid + 1).astype(int)
    cells = []
    for row in range(grid):
        for col in range(grid):
            cell_bins = bin_index[
                row_edges[row] : row_edges[row + 1],
                col_edges[col] : col_edges[col + 1],
            ].ravel()
            cell_mag = magnitude[
                row_edges[row] : row_edges[row + 1],
                col_edges[col] : col_edges[col + 1],
            ].ravel()
            cells.append(
                np.bincount(cell_bins, weights=cell_mag, minlength=orientations)
            )
    descriptor = np.concatenate(cells)
    norm = np.linalg.norm(descriptor)
    return descriptor / norm if norm > 0 else descriptor
