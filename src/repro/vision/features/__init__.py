"""Patch featurizers: colour histograms and gradient histograms."""

from repro.vision.features.color_histogram import (
    color_histogram,
    color_histogram_soft,
    histogram_distance,
    marginal_histogram,
)
from repro.vision.features.hog import gradient_histogram

__all__ = [
    "color_histogram",
    "color_histogram_soft",
    "gradient_histogram",
    "histogram_distance",
    "marginal_histogram",
]
