"""Vision substrate: synthetic scenes, renderer, models, features, backends.

This package is the stand-in for the paper's pretrained-network stack
(PyTorch SSD, OCR, FCRN depth) — see DESIGN.md §1 for the substitution
rationale. Everything is deterministic given its seed.
"""

from repro.vision.backends.device import DEVICE_SPECS, Device, get_device
from repro.vision.models.base import Detection, VisionModel, iou
from repro.vision.models.depth import MonocularDepth
from repro.vision.models.embeddings import TinyEmbedder
from repro.vision.models.ocr import OcrResult, TemplateOCR
from repro.vision.models.ssd import DetectorNoise, SyntheticSSD
from repro.vision.render import Renderer
from repro.vision.scene import Camera, GroundTruthBox, ObjectState, Scene, SceneObject

__all__ = [
    "DEVICE_SPECS",
    "Camera",
    "Detection",
    "DetectorNoise",
    "Device",
    "GroundTruthBox",
    "MonocularDepth",
    "ObjectState",
    "OcrResult",
    "Renderer",
    "Scene",
    "SceneObject",
    "SyntheticSSD",
    "TemplateOCR",
    "TinyEmbedder",
    "VisionModel",
    "get_device",
    "iou",
]
