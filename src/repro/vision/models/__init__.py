"""Simulated vision models (detector, OCR, depth, embeddings)."""
