"""TemplateOCR: the optical-character-recognition substitute.

DeepLens's ETL layer includes an OCR patch generator (Section 4.1) used by
q3 (jersey numbers) and q5 (strings in documents/screenshots). Offline,
recognition is done by classic template matching over the same 5x7 glyph
font the renderer stamps:

1. grayscale + polarity detection (ink can be darker or lighter than the
   surround);
2. row projection splits lines, column projection splits glyphs;
3. every glyph is block-mean resized to 7x5 and matched against the font
   by mean absolute difference;
4. per-glyph scores below the confidence floor are rejected.

Recognition genuinely fails on small or heavily-compressed text — the same
failure profile a learned OCR model has, which is what q5's accuracy and
the encoding experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision import glyphs
from repro.vision.backends.device import Device
from repro.vision.backends.kernels import resize_mean
from repro.vision.models.base import VisionModel

#: FLOPs charged per input pixel — template matching plus the light
#: projection passes (far cheaper than detection CNNs).
FLOPS_PER_PIXEL = 2_000.0


@dataclass(frozen=True)
class OcrResult:
    """Recognized text for one patch."""

    text: str
    confidence: float  # mean per-glyph match score in [0, 1]
    n_lines: int

    def tokens(self) -> list[str]:
        return [token for token in self.text.replace("\n", " ").split(" ") if token]


class TemplateOCR(VisionModel):
    """Glyph-template OCR over the renderer's dot-matrix font."""

    name = "template-ocr"
    label_domain = None  # open output: any string over the font alphabet

    def __init__(
        self,
        device: Device | None = None,
        *,
        min_glyph_score: float = 0.72,
        min_ink_fraction: float = 0.01,
    ) -> None:
        super().__init__(device)
        self.min_glyph_score = min_glyph_score
        self.min_ink_fraction = min_ink_fraction
        self._templates = {
            char: glyphs.glyph_bitmap(char) for char in glyphs.ALPHABET if char != " "
        }

    def process(self, image: np.ndarray) -> OcrResult:
        """Recognize text in one uint8 patch (RGB or grayscale)."""
        flops = FLOPS_PER_PIXEL * image.shape[0] * image.shape[1]
        return self.device.execute(
            lambda: self._recognize(image), flops=flops, bytes_in=image.nbytes
        )

    # -- recognition pipeline -----------------------------------------------

    def _recognize(self, image: np.ndarray) -> OcrResult:
        gray = image.astype(np.float64)
        if gray.ndim == 3:
            gray = gray.mean(axis=2)
        ink = self._binarize(gray)
        if ink is None:
            return OcrResult(text="", confidence=0.0, n_lines=0)
        lines = self._split_rows(ink)
        texts: list[str] = []
        scores: list[float] = []
        for row_lo, row_hi in lines:
            line_text, line_scores = self._read_line(ink[row_lo:row_hi])
            if line_text:
                texts.append(line_text)
                scores.extend(line_scores)
        text = "\n".join(texts)
        confidence = float(np.mean(scores)) if scores else 0.0
        return OcrResult(text=text, confidence=confidence, n_lines=len(texts))

    def _binarize(self, gray: np.ndarray) -> np.ndarray | None:
        lo, hi = float(gray.min()), float(gray.max())
        if hi - lo < 30.0:
            return None  # no contrast: nothing to read
        threshold = (lo + hi) / 2.0
        dark = gray < threshold
        # Ink is the minority phase; pick the polarity with fewer pixels.
        ink = dark if dark.mean() <= 0.5 else ~dark
        if ink.mean() < self.min_ink_fraction:
            return None
        return ink

    @staticmethod
    def _split_rows(ink: np.ndarray) -> list[tuple[int, int]]:
        profile = ink.any(axis=1)
        lines = []
        start = None
        for row, has_ink in enumerate(profile):
            if has_ink and start is None:
                start = row
            elif not has_ink and start is not None:
                lines.append((start, row))
                start = None
        if start is not None:
            lines.append((start, len(profile)))
        return [(lo, hi) for lo, hi in lines if hi - lo >= 3]

    def _read_line(self, line: np.ndarray) -> tuple[str, list[float]]:
        profile = line.any(axis=0)
        glyph_spans = []
        start = None
        for col, has_ink in enumerate(profile):
            if has_ink and start is None:
                start = col
            elif not has_ink and start is not None:
                glyph_spans.append((start, col))
                start = None
        if start is not None:
            glyph_spans.append((start, len(profile)))

        chars: list[str] = []
        scores: list[float] = []
        gap_threshold = self._space_gap(glyph_spans)
        previous_end = None
        for col_lo, col_hi in glyph_spans:
            if col_hi - col_lo < 2:
                continue
            if (
                previous_end is not None
                and gap_threshold is not None
                and col_lo - previous_end >= gap_threshold
            ):
                chars.append(" ")
            previous_end = col_hi
            rows = line[:, col_lo:col_hi]
            row_profile = rows.any(axis=1)
            row_indices = np.flatnonzero(row_profile)
            crop = rows[row_indices[0] : row_indices[-1] + 1]
            char, score = self._match_glyph(crop)
            if score >= self.min_glyph_score:
                chars.append(char)
                scores.append(score)
        return "".join(chars).strip(), scores

    @staticmethod
    def _space_gap(spans: list[tuple[int, int]]) -> float | None:
        if len(spans) < 2:
            return None
        widths = [hi - lo for lo, hi in spans]
        # inter-word gaps are wider than the 1-dot inter-glyph spacing,
        # proportionally to the glyph scale
        return max(float(np.median(widths)) * 0.75, 2.0)

    def _match_glyph(self, crop: np.ndarray) -> tuple[str, float]:
        resized = resize_mean(crop.astype(np.float64), glyphs.GLYPH_H, glyphs.GLYPH_W)
        best_char, best_score = "?", 0.0
        for char, template in self._templates.items():
            score = 1.0 - float(np.abs(resized - template).mean())
            if score > best_score:
                best_char, best_score = char, score
        return best_char, best_score
