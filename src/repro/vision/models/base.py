"""Vision-model interface and shared output types.

The query layer (Section 2.2) is agnostic to how patches are produced; a
model here is anything that maps pixels to structured outputs. Each model
declares the *domain* of labels it can emit — the hook the type system
(Section 4.2) uses to validate that a downstream filter's constant is
plausibly produced by the pipeline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.vision.backends.device import Device, get_device


@dataclass(frozen=True)
class Detection:
    """One detector output: a box, a label from the model's domain, a score."""

    bbox: tuple[int, int, int, int]  # x1, y1, x2, y2 (pixel, half-open)
    label: str
    score: float

    def width(self) -> int:
        return self.bbox[2] - self.bbox[0]

    def height(self) -> int:
        return self.bbox[3] - self.bbox[1]

    def area(self) -> int:
        return max(self.width(), 0) * max(self.height(), 0)

    def crop(self, image: np.ndarray) -> np.ndarray:
        x1, y1, x2, y2 = self.bbox
        return image[max(y1, 0) : y2, max(x1, 0) : x2]


def iou(a: tuple[int, int, int, int], b: tuple[int, int, int, int]) -> float:
    """Intersection-over-union of two (x1, y1, x2, y2) boxes."""
    ix1, iy1 = max(a[0], b[0]), max(a[1], b[1])
    ix2, iy2 = min(a[2], b[2]), min(a[3], b[3])
    inter = max(ix2 - ix1, 0) * max(iy2 - iy1, 0)
    if inter == 0:
        return 0.0
    area_a = (a[2] - a[0]) * (a[3] - a[1])
    area_b = (b[2] - b[0]) * (b[3] - b[1])
    return inter / float(area_a + area_b - inter)


class VisionModel(ABC):
    """A pixel-consuming model bound to an execution device."""

    name: str = "model"
    #: closed world of labels this model can emit (None = open / not label-like)
    label_domain: frozenset[str] | None = None

    def __init__(self, device: Device | None = None) -> None:
        self.device = device or get_device("avx")

    @abstractmethod
    def process(self, image: np.ndarray):
        """Run the model on one uint8 image."""
