"""SyntheticSSD: the object-detector substitute.

The paper's pipelines start with the Single-Shot Detector (SSD) network
[Liu et al. 2016]. No pretrained network is available offline, so DeepLens
queries here run on **SyntheticSSD**, a real pixel-level detector matched
to the renderer's contract (see :mod:`repro.vision.render`):

1. *segmentation* — foreground objects are high-saturation against a
   low-saturation background, so the saturation channel is thresholded and
   connected components are labeled **per hue sector** (adjacent objects
   with different identity colours stay separate, as a class-aware network
   would keep them); vertically-adjacent parts of one silhouette (head +
   torso) are then reassembled into a single box;
2. *classification* — a silhouette heuristic (aspect ratio + fill pattern)
   assigns ``vehicle`` / ``person``;
3. *scoring* — saturation margin and area produce a confidence in (0, 1];
4. *noise model* — a seeded, content-keyed noise layer injects the failure
   modes a neural detector has: missing small/low-contrast objects,
   mislabeling borderline silhouettes, and occasional false positives.

Faithfulness to the paper's measurements:

* **Figure 2** — lossy encoding smears the saturation edges of small
  objects, so detection accuracy *organically* degrades with compression;
* **Table 1** — mislabeled pedestrians are exactly what makes the
  filter-pushdown plan lose recall on q4;
* **Figure 8** — the device is charged with the FLOPs of an equivalent CNN
  forward pass (:data:`FLOPS_PER_PIXEL`), so backend comparisons reflect
  inference-dominated ETL.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.vision.backends.device import Device
from repro.vision.models.base import Detection, VisionModel

#: FLOPs charged per input pixel — the arithmetic intensity of a small
#: single-shot detection network (SSD-class models run hundreds of kFLOPs
#: per pixel; this uses a lighter head suited to the synthetic scenes).
FLOPS_PER_PIXEL = 30_000.0

LABEL_VEHICLE = "vehicle"
LABEL_PERSON = "person"


@dataclass(frozen=True)
class DetectorNoise:
    """Injected error rates (all content-keyed and deterministic per seed)."""

    p_mislabel: float = 0.06
    p_miss: float = 0.02
    p_false_positive: float = 0.01  # per frame
    seed: int = 0

    def rng_for(self, payload: tuple) -> np.random.Generator:
        digest = hashlib.blake2b(
            repr((self.seed, payload)).encode(), digest_size=8
        ).digest()
        return np.random.default_rng(int.from_bytes(digest, "big"))


class SyntheticSSD(VisionModel):
    """Saturation-segmentation object detector with a CNN-like error profile."""

    name = "synthetic-ssd"
    label_domain = frozenset({LABEL_VEHICLE, LABEL_PERSON})

    def __init__(
        self,
        device: Device | None = None,
        *,
        saturation_threshold: float = 48.0,
        min_area: int = 24,
        score_threshold: float = 0.25,
        noise: DetectorNoise | None = None,
    ) -> None:
        super().__init__(device)
        self.saturation_threshold = saturation_threshold
        self.min_area = min_area
        self.score_threshold = score_threshold
        self.noise = noise if noise is not None else DetectorNoise()

    # -- public API -----------------------------------------------------

    def process(self, image: np.ndarray) -> list[Detection]:
        """Detect objects in one uint8 RGB frame."""
        flops = FLOPS_PER_PIXEL * image.shape[0] * image.shape[1]
        return self.device.execute(
            lambda: self._detect(image), flops=flops, bytes_in=image.nbytes
        )

    # -- detection pipeline -----------------------------------------------

    _HUE_SECTORS = 12

    def _detect(self, image: np.ndarray) -> list[Detection]:
        pixels = image.astype(np.float64)
        saturation = pixels.max(axis=2) - pixels.min(axis=2)
        mask = saturation > self.saturation_threshold
        boxes = self._segment(pixels, saturation, mask)
        boxes = self._merge_parts(boxes)
        detections: list[Detection] = []
        for box in boxes:
            detection = self._box_to_detection(saturation, mask, box)
            if detection is not None:
                detections.append(detection)
        detections.sort(key=lambda det: det.bbox)
        return self._apply_noise(image, detections)

    def _segment(
        self, pixels: np.ndarray, saturation: np.ndarray, mask: np.ndarray
    ) -> list[tuple[int, int, int, int]]:
        """Connected components of the saturation mask, split by hue sector."""
        hue = self._hue_degrees(pixels, saturation)
        sector = (hue / (360.0 / self._HUE_SECTORS)).astype(np.int32)
        sector[~mask] = -1
        boxes: list[tuple[int, int, int, int]] = []
        for sector_id in np.unique(sector):
            if sector_id < 0:
                continue
            labeled, n_components = ndimage.label(sector == sector_id)
            if not n_components:
                continue
            for bounds in ndimage.find_objects(labeled):
                if bounds is None:
                    continue
                area = int((labeled[bounds] > 0).sum())
                if area < max(self.min_area // 4, 4):
                    continue  # speckle; real parts get merged next
                boxes.append(
                    (bounds[1].start, bounds[0].start, bounds[1].stop, bounds[0].stop)
                )
        return boxes

    @staticmethod
    def _hue_degrees(pixels: np.ndarray, saturation: np.ndarray) -> np.ndarray:
        red, green, blue = pixels[:, :, 0], pixels[:, :, 1], pixels[:, :, 2]
        peak = pixels.max(axis=2)
        chroma = np.maximum(saturation, 1e-9)
        hue = np.where(
            peak == red,
            np.mod((green - blue) / chroma, 6.0),
            np.where(
                peak == green,
                (blue - red) / chroma + 2.0,
                (red - green) / chroma + 4.0,
            ),
        )
        return hue * 60.0

    def _merge_parts(
        self, boxes: list[tuple[int, int, int, int]]
    ) -> list[tuple[int, int, int, int]]:
        """Reassemble vertically-stacked parts (head over torso) into one box."""
        merged = True
        boxes = list(boxes)
        while merged:
            merged = False
            result: list[tuple[int, int, int, int]] = []
            while boxes:
                current = boxes.pop()
                for idx, other in enumerate(boxes):
                    if self._stacked(current, other):
                        boxes[idx] = (
                            min(current[0], other[0]),
                            min(current[1], other[1]),
                            max(current[2], other[2]),
                            max(current[3], other[3]),
                        )
                        merged = True
                        break
                else:
                    result.append(current)
            boxes = result
        return boxes

    @staticmethod
    def _stacked(a: tuple[int, int, int, int], b: tuple[int, int, int, int]) -> bool:
        x_overlap = min(a[2], b[2]) - max(a[0], b[0])
        if x_overlap <= 0:
            return False
        narrow = min(a[2] - a[0], b[2] - b[0])
        if x_overlap < 0.6 * narrow:
            return False
        vertical_gap = max(a[1], b[1]) - min(a[3], b[3])
        return vertical_gap <= 2

    def _box_to_detection(
        self,
        saturation: np.ndarray,
        mask: np.ndarray,
        box: tuple[int, int, int, int],
    ) -> Detection | None:
        x1, y1, x2, y2 = box
        width, height = x2 - x1, y2 - y1
        if width <= 1 or height <= 1:
            return None
        region = mask[y1:y2, x1:x2]
        area = int(region.sum())
        if area < self.min_area:
            return None
        fill = area / float(width * height)
        if fill < 0.3:
            # sparse component: texture speckle, not an object
            return None
        mean_margin = float(
            saturation[y1:y2, x1:x2][region].mean() - self.saturation_threshold
        )
        score = 1.0 - np.exp(-(mean_margin / 60.0 + area / 600.0))
        if score < self.score_threshold:
            return None
        label = self._classify(width, height, fill)
        return Detection(bbox=(x1, y1, x2, y2), label=label, score=round(score, 4))

    @staticmethod
    def _classify(width: int, height: int, fill: float) -> str:
        aspect = width / float(height)
        if aspect >= 1.1:
            return LABEL_VEHICLE
        if aspect <= 0.9:
            return LABEL_PERSON
        # ambiguous silhouette: fall back to fill pattern — vehicles have
        # cut-out wheels, so their boxes fill less completely
        return LABEL_VEHICLE if fill < 0.82 else LABEL_PERSON

    # -- noise layer --------------------------------------------------------

    def _apply_noise(
        self, image: np.ndarray, detections: list[Detection]
    ) -> list[Detection]:
        noisy: list[Detection] = []
        for det in detections:
            rng = self.noise.rng_for(("det", det.bbox, det.label))
            roll = rng.random()
            if roll < self.noise.p_miss:
                continue
            if roll < self.noise.p_miss + self.noise.p_mislabel:
                flipped = (
                    LABEL_PERSON if det.label == LABEL_VEHICLE else LABEL_VEHICLE
                )
                noisy.append(
                    Detection(bbox=det.bbox, label=flipped, score=det.score * 0.8)
                )
                continue
            noisy.append(det)
        frame_rng = self.noise.rng_for(("fp", image.shape, int(image[::16, ::16].sum())))
        if frame_rng.random() < self.noise.p_false_positive:
            height, width = image.shape[:2]
            bw = int(frame_rng.integers(8, max(width // 4, 9)))
            bh = int(frame_rng.integers(8, max(height // 4, 9)))
            x1 = int(frame_rng.integers(0, max(width - bw, 1)))
            y1 = int(frame_rng.integers(0, max(height - bh, 1)))
            label = LABEL_VEHICLE if frame_rng.random() < 0.5 else LABEL_PERSON
            noisy.append(
                Detection(bbox=(x1, y1, x1 + bw, y1 + bh), label=label, score=0.31)
            )
        return noisy
