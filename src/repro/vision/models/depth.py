"""MonocularDepth: the depth-prediction-network substitute.

q6 annotates every detected pedestrian with a metric depth (the paper uses
the pretrained FCRN network of Laina et al.). Offline, depth is estimated
from the same monocular cues such a network learns for street scenes:

* **ground-plane cue** — a standing object's foot-line row maps to depth
  through the camera projection (farther objects have foot-lines nearer
  the horizon);
* **scale cue** — apparent height in pixels is inversely proportional to
  depth given a class height prior (adult pedestrians ~1.7 m);
* the two cues are blended and perturbed with content-keyed multiplicative
  noise, giving the smooth-but-imperfect error profile of a regression CNN.

The estimator reads only the *observed* bounding box — never the scene's
ground truth — so its errors propagate into q6's join results exactly the
way network errors would.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.vision.backends.device import Device
from repro.vision.models.base import VisionModel
from repro.vision.scene import Camera

#: FLOPs charged per input pixel — FCRN-class fully-convolutional
#: regression networks are in the same arithmetic band as detectors.
FLOPS_PER_PIXEL = 20_000.0


class MonocularDepth(VisionModel):
    """Bounding-box monocular depth estimator with a CNN-like error profile."""

    name = "monocular-depth"
    label_domain = None

    def __init__(
        self,
        camera: Camera,
        device: Device | None = None,
        *,
        height_prior: float = 1.7,
        ground_weight: float = 0.6,
        noise_sigma: float = 0.06,
        seed: int = 0,
    ) -> None:
        super().__init__(device)
        self.camera = camera
        self.height_prior = height_prior
        self.ground_weight = ground_weight
        self.noise_sigma = noise_sigma
        self.seed = seed

    def process(self, image: np.ndarray) -> float:
        """Estimate depth treating the whole patch as the object box.

        Patch-only estimation has no foot-line context, so only the scale
        cue applies; prefer :meth:`estimate` when the frame box is known.
        """
        flops = FLOPS_PER_PIXEL * image.shape[0] * image.shape[1]
        return self.device.execute(
            lambda: self._scale_depth(image.shape[0], ("patch", image.shape)),
            flops=flops,
            bytes_in=image.nbytes,
        )

    def estimate(self, bbox: tuple[int, int, int, int]) -> float:
        """Estimate metric depth for a detection box in frame coordinates."""
        x1, y1, x2, y2 = bbox
        height_px = max(y2 - y1, 1)
        flops = FLOPS_PER_PIXEL * max(x2 - x1, 1) * height_px
        return self.device.execute(
            lambda: self._blend(bbox, height_px), flops=flops
        )

    # -- cues -----------------------------------------------------------

    def _blend(self, bbox: tuple[int, int, int, int], height_px: int) -> float:
        scale_depth = self._scale_depth(height_px, bbox)
        y_bottom = bbox[3]
        if y_bottom > self.camera.horizon_y + 1:
            ground_depth = self.camera.depth_from_foot(float(y_bottom))
            depth = (
                self.ground_weight * ground_depth
                + (1.0 - self.ground_weight) * scale_depth
            )
        else:
            depth = scale_depth
        return float(depth * self._noise_factor(bbox))

    def _scale_depth(self, height_px: int, noise_key: tuple) -> float:
        depth = self.camera.focal * self.height_prior / max(float(height_px), 1.0)
        return float(depth * self._noise_factor(noise_key))

    def _noise_factor(self, payload) -> float:
        digest = hashlib.blake2b(
            repr((self.seed, payload)).encode(), digest_size=8
        ).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "big"))
        return float(np.exp(rng.normal(0.0, self.noise_sigma)))
