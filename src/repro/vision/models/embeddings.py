"""TinyEmbedder: the pretrained-CNN-feature substitute.

Image-matching queries (q1 near-duplicates, q4 deduplication) compare
patches in a feature space. Besides colour histograms (the paper's
explicit choice), DeepLens experiments need genuinely *high-dimensional*
features for the Ball-tree studies (Figures 6/7). TinyEmbedder is a real
forward-only convolutional network in numpy:

    resize 32x32 -> conv3x3(12, stride 2) -> ReLU
                 -> conv3x3(24, stride 2) -> ReLU
                 -> adaptive avg-pool 2x2 -> flatten (96)
                 -> linear projection to ``dim`` -> tanh -> L2 normalize

Weights are fixed by seed (a "pretrained" net whose parameters happen to be
random projections — which preserve relative distances well, the property
matching queries rely on). All arithmetic flows through the device kernels,
so CPU/AVX/GPU comparisons charge realistic inference costs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.vision.backends.device import Device
from repro.vision.backends.kernels import avg_pool_to, conv2d, matmul, relu, resize_mean
from repro.vision.models.base import VisionModel

INPUT_SIZE = 32


class TinyEmbedder(VisionModel):
    """Forward-only numpy CNN producing L2-normalized descriptors."""

    name = "tiny-embedder"
    label_domain = None

    def __init__(
        self, device: Device | None = None, *, dim: int = 64, seed: int = 17
    ) -> None:
        super().__init__(device)
        if dim < 4:
            raise DeviceError(f"embedding dim must be >= 4, got {dim}")
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.conv1 = rng.normal(0.0, 0.35, size=(3, 3, 3, 12))
        self.conv2 = rng.normal(0.0, 0.25, size=(3, 3, 12, 24))
        self.projection = rng.normal(0.0, 0.3, size=(96, dim))

    def process(self, image: np.ndarray) -> np.ndarray:
        """Embed one uint8 patch into a ``dim``-d unit vector."""
        return self.embed_batch([image])[0]

    def embed_batch(self, images: list[np.ndarray]) -> np.ndarray:
        """Embed a batch of patches; returns (n, dim).

        Batching matters for the device comparison: one batch is one kernel
        sequence, so GPU launch overhead amortizes across the batch exactly
        as it would for real inference.
        """
        if not images:
            return np.zeros((0, self.dim))
        batch = np.stack(
            [self._prepare(image) for image in images], axis=0
        )  # (n, 32, 32, 3)
        maps = relu(self.device, conv2d(self.device, batch, self.conv1, stride=2))
        maps = relu(self.device, conv2d(self.device, maps, self.conv2, stride=2))
        pooled = avg_pool_to(self.device, maps, 2, 2)  # (n, 2, 2, 24)
        flat = pooled.reshape(len(images), -1)  # (n, 96)
        projected = np.tanh(matmul(self.device, flat, self.projection))
        norms = np.linalg.norm(projected, axis=1, keepdims=True)
        return projected / np.maximum(norms, 1e-9)

    @staticmethod
    def _prepare(image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=np.float64)
        if image.ndim == 2:
            image = np.stack([image] * 3, axis=2)
        if image.shape[0] < 2 or image.shape[1] < 2:
            image = np.pad(
                image,
                ((0, max(2 - image.shape[0], 0)), (0, max(2 - image.shape[1], 0)), (0, 0)),
                mode="edge",
            )
        resized = resize_mean(image, INPUT_SIZE, INPUT_SIZE)
        return (resized - 128.0) / 128.0
