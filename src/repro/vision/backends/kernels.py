"""Compute kernels with device-charged cost accounting.

Every kernel takes a :class:`~repro.vision.backends.device.Device`, executes
vectorized numpy (identical results on every backend), and charges the
device's cost model with the kernel's arithmetic work and transfer volume.
Naive ``*_reference`` implementations exist for the hot kernels so tests can
check the vectorized versions against straight-line scalar code.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.vision.backends.device import Device


def matmul(device: Device, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` with 2*m*k*n FLOPs charged."""
    if a.shape[-1] != b.shape[0]:
        raise DeviceError(f"matmul shape mismatch {a.shape} x {b.shape}")
    m = int(np.prod(a.shape[:-1]))
    k = a.shape[-1]
    n = b.shape[-1] if b.ndim > 1 else 1
    return device.execute(
        lambda: a @ b,
        flops=2.0 * m * k * n,
        bytes_in=a.nbytes + b.nbytes,
        bytes_out=m * n * 8,
    )


def relu(device: Device, x: np.ndarray) -> np.ndarray:
    return device.execute(lambda: np.maximum(x, 0.0), flops=float(x.size))


def conv2d(
    device: Device, images: np.ndarray, weights: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Batched 2-D convolution via im2col + matmul.

    ``images``: (N, H, W, C_in); ``weights``: (KH, KW, C_in, C_out).
    Returns (N, H', W', C_out) with valid padding.
    """
    n, height, width, c_in = images.shape
    kh, kw, wc_in, c_out = weights.shape
    if wc_in != c_in:
        raise DeviceError(
            f"conv2d channel mismatch: images have {c_in}, weights expect {wc_in}"
        )
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise DeviceError(
            f"conv2d kernel {kh}x{kw} larger than image {height}x{width}"
        )

    def _run() -> np.ndarray:
        windows = np.lib.stride_tricks.sliding_window_view(
            images, (kh, kw), axis=(1, 2)
        )  # (N, H-kh+1, W-kw+1, C_in, KH, KW)
        windows = windows[:, ::stride, ::stride]
        columns = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
            n * out_h * out_w, kh * kw * c_in
        )
        kernel = weights.reshape(kh * kw * c_in, c_out)
        return (columns @ kernel).reshape(n, out_h, out_w, c_out)

    flops = 2.0 * n * out_h * out_w * kh * kw * c_in * c_out
    return device.execute(
        _run,
        flops=flops,
        bytes_in=images.nbytes + weights.nbytes,
        bytes_out=n * out_h * out_w * c_out * 8,
    )


def conv2d_reference(
    images: np.ndarray, weights: np.ndarray, stride: int = 1
) -> np.ndarray:
    """Scalar-loop convolution used only to validate :func:`conv2d`."""
    n, height, width, c_in = images.shape
    kh, kw, _, c_out = weights.shape
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    out = np.zeros((n, out_h, out_w, c_out))
    for img in range(n):
        for row in range(out_h):
            for col in range(out_w):
                window = images[
                    img,
                    row * stride : row * stride + kh,
                    col * stride : col * stride + kw,
                    :,
                ]
                for ch in range(c_out):
                    out[img, row, col, ch] = np.sum(window * weights[:, :, :, ch])
    return out


def pairwise_sq_dists(
    device: Device,
    left: np.ndarray,
    right: np.ndarray,
    *,
    rows_per_kernel: int | None = None,
) -> np.ndarray:
    """All-pairs squared Euclidean distances, (n, m) for (n,d) x (m,d).

    ``rows_per_kernel`` models how the work is tiled into device launches:
    the paper's GPU all-pairs matcher issues one kernel per probe batch, so
    small batches on a GPU pay launch overhead many times — the mechanism
    behind q1's GPU slowdown (Figure 8).
    """
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise DeviceError(
            f"pairwise_sq_dists needs (n,d) and (m,d), got {left.shape}, {right.shape}"
        )
    n, d = left.shape
    m = right.shape[0]
    kernels = 1
    if rows_per_kernel is not None and rows_per_kernel > 0:
        kernels = -(-n // rows_per_kernel)

    def _run() -> np.ndarray:
        left_sq = np.sum(left**2, axis=1)[:, None]
        right_sq = np.sum(right**2, axis=1)[None, :]
        cross = left @ right.T
        return np.maximum(left_sq + right_sq - 2.0 * cross, 0.0)

    return device.execute(
        _run,
        flops=2.0 * n * m * d + 3.0 * n * m,
        bytes_in=left.nbytes + right.nbytes,
        bytes_out=n * m * 8,
        kernels=kernels,
    )


def pairwise_sq_dists_reference(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Scalar-loop distances used only to validate :func:`pairwise_sq_dists`."""
    n, m = left.shape[0], right.shape[0]
    out = np.zeros((n, m))
    for i in range(n):
        for j in range(m):
            diff = left[i] - right[j]
            out[i, j] = float(np.dot(diff, diff))
    return out


def pairwise_threshold_match(
    device: Device,
    left: np.ndarray,
    right: np.ndarray,
    threshold: float,
    *,
    rows_per_kernel: int | None = None,
) -> list[tuple[int, int]]:
    """All pairs within Euclidean ``threshold``; only matches transfer back.

    The GPU-honest variant of the all-pairs matcher: the distance matrix is
    reduced on-device and only the (sparse) matched index pairs cross the
    bus, so ``bytes_out`` scales with matches, not with n*m.
    """
    if left.ndim != 2 or right.ndim != 2 or left.shape[1] != right.shape[1]:
        raise DeviceError(
            f"pairwise_threshold_match needs (n,d) and (m,d), got "
            f"{left.shape}, {right.shape}"
        )
    n, d = left.shape
    m = right.shape[0]
    kernels = 1
    if rows_per_kernel is not None and rows_per_kernel > 0:
        kernels = -(-n // rows_per_kernel)

    def _run() -> list[tuple[int, int]]:
        left_sq = np.sum(left**2, axis=1)[:, None]
        right_sq = np.sum(right**2, axis=1)[None, :]
        dists = np.maximum(left_sq + right_sq - 2.0 * (left @ right.T), 0.0)
        rows, cols = np.nonzero(dists <= threshold * threshold)
        return list(zip(rows.tolist(), cols.tolist()))

    matches = device.execute(
        _run,
        flops=2.0 * n * m * d + 4.0 * n * m,
        bytes_in=left.nbytes + right.nbytes,
        bytes_out=0,  # adjusted below once the match count is known
        kernels=kernels,
    )
    device.clock.charge(
        device.cost(0.0, bytes_out=16 * len(matches), kernels=0)
        if device.spec.transfer_bytes_per_second
        else 0.0
    )
    return matches


def avg_pool_to(device: Device, maps: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Adaptive average pooling of (N, H, W, C) feature maps to (out_h, out_w)."""
    n, height, width, channels = maps.shape
    if height < out_h or width < out_w:
        raise DeviceError(
            f"cannot pool {height}x{width} maps up to {out_h}x{out_w}"
        )

    def _run() -> np.ndarray:
        row_edges = np.linspace(0, height, out_h + 1).astype(int)
        col_edges = np.linspace(0, width, out_w + 1).astype(int)
        out = np.empty((n, out_h, out_w, channels))
        for row in range(out_h):
            for col in range(out_w):
                tile = maps[
                    :, row_edges[row] : row_edges[row + 1],
                    col_edges[col] : col_edges[col + 1], :,
                ]
                out[:, row, col, :] = tile.mean(axis=(1, 2))
        return out

    return device.execute(_run, flops=float(maps.size), bytes_in=maps.nbytes)


def resize_mean(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Block-mean resize of (H, W[, C]) to (out_h, out_w[, C]).

    Host-side preprocessing (not device-charged): the equivalent of the
    fixed input-resolution resampling every CNN front-end performs.
    """
    squeeze = image.ndim == 2
    if squeeze:
        image = image[:, :, None]
    height, width, channels = image.shape
    row_edges = np.linspace(0, height, out_h + 1).astype(int)
    col_edges = np.linspace(0, width, out_w + 1).astype(int)
    out = np.empty((out_h, out_w, channels), dtype=np.float64)
    for row in range(out_h):
        row_lo, row_hi = row_edges[row], max(row_edges[row + 1], row_edges[row] + 1)
        for col in range(out_w):
            col_lo, col_hi = col_edges[col], max(col_edges[col + 1], col_edges[col] + 1)
            out[row, col, :] = image[row_lo:row_hi, col_lo:col_hi, :].mean(axis=(0, 1))
    return out[:, :, 0] if squeeze else out
