"""Execution backends: CPU (scalar), AVX (vectorized), GPU (accelerator).

The paper's Figure 8 compares "a vanilla CPU implementation (CPU), a
vectorized execution (AVX), and a GPU implementation (GPU)". This
environment has no GPU, so the comparison is reproduced with a **device
cost model** (the substitution recorded in DESIGN.md):

* every kernel *actually executes* as vectorized numpy, so results are
  bit-identical across devices;
* each device charges the kernel's cost to a simulated clock using a small
  analytic model — scalar ALU throughput for CPU, SIMD throughput for AVX,
  and ``launch overhead + PCIe transfer + massively-parallel compute`` for
  GPU.

The GPU model is what produces the paper's crossover: inference-sized
kernels amortize launch and transfer, while the many small kernels of a
small matching query do not ("for the smaller query (q1), the overhead of
using the GPU outweighs the costs").

Model constants are deliberately public (:data:`DEVICE_SPECS`) and printed
by the Figure 8 harness, so the calibration is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import DeviceError

T = TypeVar("T")


@dataclass(frozen=True)
class DeviceSpec:
    """Analytic cost-model constants for one execution backend."""

    name: str
    #: sustained arithmetic throughput in FLOP/s
    flops_per_second: float
    #: host<->device transfer bandwidth in bytes/s (None = no transfer cost)
    transfer_bytes_per_second: float | None = None
    #: fixed cost per kernel launch in seconds
    launch_overhead_seconds: float = 0.0
    #: one-time session cost (context / allocation) per offloaded operator
    session_overhead_seconds: float = 0.0


DEVICE_SPECS: dict[str, DeviceSpec] = {
    # A single core executing unvectorized Python/C loops.
    "cpu": DeviceSpec(name="cpu", flops_per_second=1.5e9),
    # The same core using SIMD (AVX) through numpy's vectorized kernels.
    "avx": DeviceSpec(name="avx", flops_per_second=24e9),
    # A discrete accelerator across PCIe.
    "gpu": DeviceSpec(
        name="gpu",
        flops_per_second=900e9,
        transfer_bytes_per_second=8e9,
        launch_overhead_seconds=30e-6,
        session_overhead_seconds=1.8e-3,
    ),
}


class SimulatedClock:
    """Accumulates modeled seconds; independent of wall-clock time."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise DeviceError(f"cannot charge negative time {seconds}")
        self.elapsed += seconds

    def reset(self) -> float:
        """Zero the clock, returning the time accumulated so far."""
        elapsed, self.elapsed = self.elapsed, 0.0
        return elapsed


class Device:
    """One execution backend with its simulated clock."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.clock = SimulatedClock()
        self._sessions = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def execute(
        self,
        fn: Callable[[], T],
        *,
        flops: float,
        bytes_in: int = 0,
        bytes_out: int = 0,
        kernels: int = 1,
    ) -> T:
        """Run ``fn`` and charge its modeled cost to this device's clock.

        ``flops`` is the arithmetic work of the kernel; ``bytes_in`` /
        ``bytes_out`` the host<->device traffic (ignored on host devices);
        ``kernels`` the number of launches the operation decomposes into.
        """
        result = fn()
        self.clock.charge(self.cost(flops, bytes_in, bytes_out, kernels))
        return result

    def cost(
        self, flops: float, bytes_in: int = 0, bytes_out: int = 0, kernels: int = 1
    ) -> float:
        """Modeled seconds for a kernel without running anything."""
        spec = self.spec
        seconds = flops / spec.flops_per_second
        seconds += kernels * spec.launch_overhead_seconds
        if spec.transfer_bytes_per_second is not None:
            seconds += (bytes_in + bytes_out) / spec.transfer_bytes_per_second
        return seconds

    def open_session(self) -> None:
        """Charge the one-time offload cost (context setup, allocation).

        Operators that ship work to an accelerator call this once before a
        batch of kernels; host devices charge nothing.
        """
        self._sessions += 1
        self.clock.charge(self.spec.session_overhead_seconds)

    def __repr__(self) -> str:
        return f"Device({self.name!r}, elapsed={self.clock.elapsed:.6f}s)"


def get_device(name: str = "avx") -> Device:
    """Construct a fresh device by name (``cpu``, ``avx``, ``gpu``)."""
    try:
        spec = DEVICE_SPECS[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; expected one of {sorted(DEVICE_SPECS)}"
        ) from None
    return Device(spec)
