"""Execution backends: device cost models and compute kernels."""
