"""R-tree for rectangle intersection / containment queries.

Section 3.2: DeepLens provides "an interface to a disk-based R-Tree
implemented with libspatialindex" for "containment and intersection
queries" over bounding-box-parametrized patches. This from-scratch
replacement implements the Guttman R-tree:

* insert with least-enlargement subtree choice;
* quadratic split on overflow;
* optional sort-tile-recursive (STR) bulk loading;
* intersection, containment, and point queries over axis-aligned boxes in
  any dimension.

The paper's observation that R-trees "could not be efficiently modified
for higher dimensional data" falls out naturally: bounding-box overlap
explodes with dimension, so queries degrade toward linear scans (compare
with the Ball-tree in Figure 6/7 benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_

Rect = tuple[tuple[float, ...], tuple[float, ...]]  # (mins, maxs)


def rect_from_bbox(bbox: tuple[float, float, float, float]) -> Rect:
    """Convert an (x1, y1, x2, y2) pixel box into an R-tree rectangle."""
    x1, y1, x2, y2 = bbox
    return ((min(x1, x2), min(y1, y2)), (max(x1, x2), max(y1, y2)))


def _validate_rect(rect: Rect, dims: int | None) -> Rect:
    mins, maxs = rect
    if len(mins) != len(maxs):
        raise IndexError_(f"rect mins/maxs length mismatch: {rect}")
    if dims is not None and len(mins) != dims:
        raise IndexError_(
            f"rect has {len(mins)} dims, tree expects {dims}"
        )
    if any(lo > hi for lo, hi in zip(mins, maxs)):
        raise IndexError_(f"rect has min > max: {rect}")
    return (tuple(float(v) for v in mins), tuple(float(v) for v in maxs))


def _union(a: Rect, b: Rect) -> Rect:
    return (
        tuple(min(x, y) for x, y in zip(a[0], b[0])),
        tuple(max(x, y) for x, y in zip(a[1], b[1])),
    )


def _volume(rect: Rect) -> float:
    out = 1.0
    for lo, hi in zip(rect[0], rect[1]):
        out *= hi - lo
    return out


def _intersects(a: Rect, b: Rect) -> bool:
    return all(
        a_lo <= b_hi and b_lo <= a_hi
        for a_lo, a_hi, b_lo, b_hi in zip(a[0], a[1], b[0], b[1])
    )


def _contains(outer: Rect, inner: Rect) -> bool:
    return all(
        o_lo <= i_lo and i_hi <= o_hi
        for o_lo, o_hi, i_lo, i_hi in zip(outer[0], outer[1], inner[0], inner[1])
    )


class _Node:
    __slots__ = ("leaf", "entries")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # leaf entries: (rect, payload); inner entries: (rect, child node)
        self.entries: list[tuple[Rect, object]] = []

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for other, _ in self.entries[1:]:
            rect = _union(rect, other)
        return rect


class RTree:
    """Guttman R-tree with quadratic splits and STR bulk loading."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 4:
            raise IndexError_(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self._root = _Node(leaf=True)
        self._dims: int | None = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def dims(self) -> int | None:
        return self._dims

    # -- writes ---------------------------------------------------------

    def insert(self, rect: Rect, payload) -> None:
        """Insert one rectangle with its payload id."""
        rect = _validate_rect(rect, self._dims)
        self._dims = len(rect[0])
        split = self._insert(self._root, rect, payload)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False)
            self._root.entries = [
                (old_root.mbr(), old_root),
                (split.mbr(), split),
            ]
        self._count += 1

    def bulk_load(self, items: list[tuple[Rect, object]]) -> None:
        """Replace the tree contents via sort-tile-recursive packing."""
        if not items:
            self._root = _Node(leaf=True)
            self._count = 0
            return
        rects = [(_validate_rect(rect, None), payload) for rect, payload in items]
        dims = len(rects[0][0][0])
        for rect, _ in rects:
            if len(rect[0]) != dims:
                raise IndexError_("bulk_load items have mixed dimensionality")
        self._dims = dims
        leaves = self._str_pack(
            [(rect, payload) for rect, payload in rects], leaf=True
        )
        level = leaves
        while len(level) > 1:
            level = self._str_pack(
                [(node.mbr(), node) for node in level], leaf=False
            )
        self._root = level[0]
        self._count = len(rects)

    def _str_pack(
        self, entries: list[tuple[Rect, object]], *, leaf: bool
    ) -> list[_Node]:
        dims = self._dims or len(entries[0][0][0])
        capacity = self.max_entries

        def center(rect: Rect, axis: int) -> float:
            return (rect[0][axis] + rect[1][axis]) / 2.0

        def pack(chunk: list[tuple[Rect, object]], axis: int) -> list[list]:
            if axis >= dims - 1 or len(chunk) <= capacity:
                return [
                    chunk[i : i + capacity] for i in range(0, len(chunk), capacity)
                ]
            chunk = sorted(chunk, key=lambda e: center(e[0], axis))
            n_slabs = int(np.ceil(len(chunk) / capacity))
            slab_size = int(np.ceil(len(chunk) / np.ceil(n_slabs ** (1.0 / (dims - axis)))))
            slab_size = max(slab_size, capacity)
            out = []
            for i in range(0, len(chunk), slab_size):
                out.extend(pack(chunk[i : i + slab_size], axis + 1))
            return out

        groups = pack(sorted(entries, key=lambda e: center(e[0], 0)), 0)
        nodes = []
        for group in groups:
            node = _Node(leaf=leaf)
            node.entries = list(group)
            nodes.append(node)
        return nodes

    def _insert(self, node: _Node, rect: Rect, payload) -> _Node | None:
        if node.leaf:
            node.entries.append((rect, payload))
        else:
            best_idx = self._choose_subtree(node, rect)
            child_rect, child = node.entries[best_idx]
            split = self._insert(child, rect, payload)  # type: ignore[arg-type]
            node.entries[best_idx] = (_union(child_rect, rect), child)
            if split is not None:
                node.entries.append((split.mbr(), split))
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    @staticmethod
    def _choose_subtree(node: _Node, rect: Rect) -> int:
        best_idx, best_cost, best_volume = 0, np.inf, np.inf
        for idx, (child_rect, _) in enumerate(node.entries):
            volume = _volume(child_rect)
            enlargement = _volume(_union(child_rect, rect)) - volume
            if enlargement < best_cost or (
                enlargement == best_cost and volume < best_volume
            ):
                best_idx, best_cost, best_volume = idx, enlargement, volume
        return best_idx

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: seed with the most wasteful pair, grow greedily."""
        entries = node.entries
        worst, seeds = -np.inf, (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    _volume(_union(entries[i][0], entries[j][0]))
                    - _volume(entries[i][0])
                    - _volume(entries[j][0])
                )
                if waste > worst:
                    worst, seeds = waste, (i, j)
        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        rect_a, rect_b = group_a[0][0], group_b[0][0]
        rest = [e for idx, e in enumerate(entries) if idx not in seeds]
        for entry in rest:
            # honour minimum fill
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self.min_entries:
                group_a.append(entry)
                rect_a = _union(rect_a, entry[0])
                continue
            if len(group_b) + remaining <= self.min_entries:
                group_b.append(entry)
                rect_b = _union(rect_b, entry[0])
                continue
            grow_a = _volume(_union(rect_a, entry[0])) - _volume(rect_a)
            grow_b = _volume(_union(rect_b, entry[0])) - _volume(rect_b)
            if grow_a <= grow_b:
                group_a.append(entry)
                rect_a = _union(rect_a, entry[0])
            else:
                group_b.append(entry)
                rect_b = _union(rect_b, entry[0])
        node.entries = group_a
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        return sibling

    # -- queries ------------------------------------------------------------

    def search_intersect(self, rect: Rect) -> list:
        """Payloads of entries whose rectangles intersect ``rect``."""
        rect = _validate_rect(rect, self._dims)
        out: list = []
        if self._count == 0:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_rect, child in node.entries:
                if not _intersects(entry_rect, rect):
                    continue
                if node.leaf:
                    out.append(child)
                else:
                    stack.append(child)  # type: ignore[arg-type]
        return out

    def search_contained_in(self, rect: Rect) -> list:
        """Payloads of entries fully inside ``rect``."""
        rect = _validate_rect(rect, self._dims)
        out: list = []
        if self._count == 0:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_rect, child in node.entries:
                if not _intersects(entry_rect, rect):
                    continue
                if node.leaf:
                    if _contains(rect, entry_rect):
                        out.append(child)
                else:
                    stack.append(child)  # type: ignore[arg-type]
        return out

    def search_point(self, point: tuple[float, ...]) -> list:
        """Payloads of entries whose rectangles cover ``point``."""
        return self.search_intersect((tuple(point), tuple(point)))

    def height(self) -> int:
        """Tree height (1 = just a leaf root); exposed for benchmarks."""
        height, node = 1, self._root
        while not node.leaf:
            node = node.entries[0][1]  # type: ignore[assignment]
            height += 1
        return height
