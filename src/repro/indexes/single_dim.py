"""Single-dimensional indexes: hash, B+ tree, sorted file.

Section 3.2: "Over string valued or discrete metadata, the index choices
are straight-forward. We support hash tables and B+ Trees over any key" —
plus sorted files. These classes adapt the kvstore substrate into the
common shape the query layer consumes: metadata key -> patch id.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from repro.errors import IndexError_
from repro.storage.kvstore import BPlusTree, HashFile, Pager, SortedRecordFile


def _pack_id(patch_id: int) -> bytes:
    return struct.pack(">q", patch_id)


def _unpack_id(payload: bytes) -> int:
    return struct.unpack(">q", payload)[0]


class HashIndex:
    """Equality index: key -> patch ids. Backed by a persistent hash file."""

    kind = "hash"

    def __init__(self, pager: Pager, name: str, n_buckets: int = 256) -> None:
        self._store = HashFile(pager, f"idx:{name}", n_buckets=n_buckets)
        self.name = name

    def insert(self, key: Any, patch_id: int) -> None:
        self._store.put(key, _pack_id(patch_id))

    def lookup(self, key: Any) -> list[int]:
        return [_unpack_id(payload) for payload in self._store.get(key)]

    def delete(self, key: Any, patch_id: int | None = None) -> int:
        payload = None if patch_id is None else _pack_id(patch_id)
        return self._store.delete(key, payload)

    def __len__(self) -> int:
        return len(self._store)

    def range(self, lo: Any = None, hi: Any = None) -> Iterator[tuple[Any, int]]:
        raise IndexError_(
            "hash indexes do not support range scans; build a B+ tree or "
            "sorted-file index for range predicates"
        )


class BTreeIndex:
    """Ordered index: key -> patch ids, supporting range scans."""

    kind = "btree"

    def __init__(self, pager: Pager, name: str, order: int = 64) -> None:
        self._store = BPlusTree(pager, f"idx:{name}", order=order, unique=False)
        self.name = name

    def insert(self, key: Any, patch_id: int) -> None:
        self._store.insert(key, _pack_id(patch_id))

    def bulk_load(self, sorted_items: list[tuple[Any, int]]) -> None:
        self._store.bulk_load(
            [(key, _pack_id(patch_id)) for key, patch_id in sorted_items]
        )

    def lookup(self, key: Any) -> list[int]:
        return [_unpack_id(payload) for payload in self._store.get(key)]

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        *,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        for key, payload in self._store.range(
            lo, hi, include_lo=include_lo, include_hi=include_hi
        ):
            yield key, _unpack_id(payload)

    def delete(self, key: Any, patch_id: int | None = None) -> int:
        payload = None if patch_id is None else _pack_id(patch_id)
        return self._store.delete(key, payload)

    def __len__(self) -> int:
        return len(self._store)


class SortedFileIndex:
    """Sorted-file index: bulk-built, binary-searched, range-scannable."""

    kind = "sorted"

    def __init__(self, path) -> None:
        self._store = SortedRecordFile(path)
        self.name = str(path)

    def bulk_build(self, items: list[tuple[Any, int]]) -> None:
        self._store.bulk_build(
            [(key, _pack_id(patch_id)) for key, patch_id in items]
        )

    def append(self, key: Any, patch_id: int) -> None:
        self._store.append(key, _pack_id(patch_id))

    def lookup(self, key: Any) -> list[int]:
        return [_unpack_id(payload) for payload in self._store.get(key)]

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        *,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        for key, payload in self._store.range(
            lo, hi, include_lo=include_lo, include_hi=include_hi
        ):
            yield key, _unpack_id(payload)

    def __len__(self) -> int:
        return len(self._store)

    def close(self) -> None:
        self._store.close()
