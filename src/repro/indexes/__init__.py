"""Index structures (Section 3.2).

Single-dimensional: :class:`HashIndex`, :class:`BTreeIndex`,
:class:`SortedFileIndex`. Multi-dimensional: :class:`RTree` (intersection /
containment), :class:`BallTree` (Euclidean threshold / kNN), plus the
approximate alternatives the paper suggests in Section 7.3:
:class:`RandomHyperplaneLSH` and :class:`HNSWIndex` (graph-based ANN,
the catalog-persisted top-k similarity access path).
"""

from repro.indexes.balltree import BallTree
from repro.indexes.hnsw import HNSWIndex
from repro.indexes.lsh import RandomHyperplaneLSH
from repro.indexes.rtree import RTree, rect_from_bbox
from repro.indexes.single_dim import BTreeIndex, HashIndex, SortedFileIndex

__all__ = [
    "BallTree",
    "BTreeIndex",
    "HNSWIndex",
    "HashIndex",
    "RTree",
    "RandomHyperplaneLSH",
    "SortedFileIndex",
    "rect_from_bbox",
]
