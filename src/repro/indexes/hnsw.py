"""HNSW: a hierarchical navigable small-world graph for approximate k-NN.

The paper's similarity primitives (Sections 3.2, 7.3) lean on exact
multidimensional indexes, and Figures 6/7 show where that collapses:
Ball-tree pruning dies in high dimensions, leaving a brute-force scan.
This module is the suggested LSH-style escape hatch, built as the
stronger modern alternative — a layered skip-list-style proximity graph
(Malkov & Yashunin): every point lands on a geometrically distributed
stack of layers, upper layers form an expressway of long links for the
greedy descent, and layer 0 holds the full graph a beam search walks
with ``ef`` candidates. Recall is a *runtime* knob (``ef_search``), not
a build-time commitment.

Pure numpy on purpose: neighbor expansions are batched distance kernels
over a contiguous vector matrix, the frontier bookkeeping is two heaps.
No native extension, no new dependency, deterministic level assignment
(seeded per insertion ordinal) so a rebuilt index equals its snapshot.

Cost shape the optimizer models: a search touches about
``ef * log(n)`` vectors against ``n`` for brute force — the gap the
ANN benchmark measures against the Ball-tree.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable

import numpy as np

from repro.errors import IndexError_

__all__ = ["HNSWIndex"]

#: default max neighbors per node on upper layers (layer 0 gets 2x)
DEFAULT_M = 16
#: default beam width while building (quality of the graph)
DEFAULT_EF_CONSTRUCTION = 100
#: default beam width while searching (the recall knob)
DEFAULT_EF_SEARCH = 64


def expected_recall(ef: int, k: int) -> float:
    """Heuristic expected recall@k of a beam of width ``ef`` — the
    number ``explain()`` shows next to the hnsw-ann access path and the
    recall-estimate gauge reports. Calibrated to the empirical shape of
    the benchmark curve: ~0.7 at ef=k, ~0.93 at ef=4k, ->1 beyond."""
    if k <= 0:
        return 1.0
    ratio = float(ef) / float(max(1, k))
    return max(0.0, min(1.0, 1.0 - 0.5 * math.exp(-ratio / 2.0)))


class HNSWIndex:
    """An incremental HNSW graph over fixed-dimension float vectors.

    ``add`` appends one vector under an external id (a patch id);
    ``search`` returns the approximate k nearest as ``(distance, id)``
    pairs, nearest first — the same contract as
    :meth:`~repro.indexes.balltree.BallTree.query_knn`, so access paths
    can swap one for the other. ``ef`` at search time trades recall for
    speed; ``ef >= len(index)`` degenerates to an exhaustive (exact)
    beam.
    """

    def __init__(
        self,
        dim: int,
        *,
        m: int = DEFAULT_M,
        ef_construction: int = DEFAULT_EF_CONSTRUCTION,
        ef_search: int = DEFAULT_EF_SEARCH,
        seed: int = 0,
        metrics=None,
    ) -> None:
        if dim <= 0:
            raise IndexError_(f"vector dimension must be positive, got {dim}")
        if m < 2:
            raise IndexError_(f"hnsw m must be >= 2, got {m}")
        if ef_construction < m:
            raise IndexError_(
                f"ef_construction ({ef_construction}) must be >= m ({m})"
            )
        self.dim = int(dim)
        self.m = int(m)
        #: layer-0 degree bound: the base layer holds every point, so it
        #: gets twice the budget (the standard M_max0 = 2M rule)
        self.m0 = 2 * self.m
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self.seed = int(seed)
        self._mult = 1.0 / math.log(self.m)
        self._vectors = np.empty((0, self.dim), dtype=np.float64)
        self._n = 0
        self._ids: list[int] = []
        self._id_set: set[int] = set()
        self._levels: list[int] = []
        #: node position -> layer -> neighbor positions
        self._graph: list[list[list[int]]] = []
        self._entry = -1
        self._max_level = -1
        #: probe accounting of the most recent ``search`` call
        self.last_stats: dict[str, int] = {"hops": 0, "candidates": 0}
        self._hops = 0
        self._candidates = 0
        self.set_metrics(metrics)

    # -- telemetry ------------------------------------------------------

    def set_metrics(self, metrics) -> None:
        """Attach a metrics registry (not serialized with the graph)."""
        if metrics is None:
            from repro.core.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._metric_probes = metrics.counter(
            "deeplens_ann_probes_total", "ANN index searches executed"
        )
        self._metric_hops = metrics.histogram(
            "deeplens_ann_hops", "graph nodes expanded per ANN search"
        )
        self._metric_candidates = metrics.histogram(
            "deeplens_ann_candidates",
            "distance computations per ANN search",
        )
        self._metric_recall = metrics.gauge(
            "deeplens_ann_recall_estimate",
            "heuristic expected recall of the most recent ANN search",
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        ids: Iterable[int],
        *,
        m: int = DEFAULT_M,
        ef_construction: int = DEFAULT_EF_CONSTRUCTION,
        ef_search: int = DEFAULT_EF_SEARCH,
        seed: int = 0,
        metrics=None,
    ) -> "HNSWIndex":
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise IndexError_(
                f"hnsw build needs a non-empty (n, dim) matrix, got shape "
                f"{matrix.shape}"
            )
        index = cls(
            matrix.shape[1],
            m=m,
            ef_construction=ef_construction,
            ef_search=ef_search,
            seed=seed,
            metrics=metrics,
        )
        for vector, patch_id in zip(matrix, ids):
            index.add(vector, patch_id)
        return index

    def __len__(self) -> int:
        return self._n

    def __contains__(self, patch_id: int) -> bool:
        return int(patch_id) in self._id_set

    def ids(self) -> list[int]:
        return list(self._ids)

    def _assigned_level(self, ordinal: int) -> int:
        """Geometric level of the ``ordinal``-th insertion. Seeded per
        ordinal (not from a shared stream), so an index rebuilt by
        replaying the same insertion order is graph-identical to one
        restored from a snapshot — no RNG state to persist."""
        u = float(np.random.default_rng((self.seed, ordinal)).random())
        return int(-math.log(max(u, 1e-12)) * self._mult)

    def _check_vector(self, vector) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float64).ravel()
        if v.shape[0] != self.dim:
            raise IndexError_(
                f"hnsw expects {self.dim}-dim vectors, got {v.shape[0]}"
            )
        return v

    def _dists(self, v: np.ndarray, positions: list[int]) -> np.ndarray:
        rows = self._vectors[positions]
        delta = rows - v
        return np.sqrt(np.einsum("ij,ij->i", delta, delta))

    def _select_neighbors(
        self, candidates: list[tuple[float, int]], cap: int
    ) -> list[int]:
        """Diversity-pruned neighbor choice (Malkov's Algorithm 4): walk
        candidates nearest-first and keep one only if it is closer to
        the base point than to every neighbor already kept. Closest-only
        pruning severs the long bridge edges between well-separated
        clusters; this keeps them, so the greedy descent can cross.
        Discarded candidates backfill any spare capacity."""
        if len(candidates) <= cap:
            return [p for _, p in candidates]
        selected: list[int] = []
        discarded: list[int] = []
        for dist, pos in candidates:
            if len(selected) >= cap:
                break
            if selected and dist >= float(
                self._dists(self._vectors[pos], selected).min()
            ):
                discarded.append(pos)
            else:
                selected.append(pos)
        for pos in discarded:
            if len(selected) >= cap:
                break
            selected.append(pos)
        return selected

    def add(self, vector, patch_id: int) -> None:
        """Insert one vector under ``patch_id`` (incremental — this is
        what ``MaterializedCollection.add`` calls as new patches land)."""
        v = self._check_vector(vector)
        pos = self._n
        if pos == len(self._vectors):  # grow geometrically
            grown = np.empty(
                (max(8, 2 * len(self._vectors)), self.dim), dtype=np.float64
            )
            grown[: self._n] = self._vectors[: self._n]
            self._vectors = grown
        self._vectors[pos] = v
        self._n += 1
        self._ids.append(int(patch_id))
        self._id_set.add(int(patch_id))
        level = self._assigned_level(pos)
        self._levels.append(level)
        self._graph.append([[] for _ in range(level + 1)])

        if self._entry < 0:
            self._entry = pos
            self._max_level = level
            return

        # greedy descent through layers above the new node's top layer
        cur = self._entry
        for layer in range(self._max_level, level, -1):
            cur = self._greedy_step(v, cur, layer)

        # beam-insert on each shared layer, top down
        entry_points = [cur]
        for layer in range(min(level, self._max_level), -1, -1):
            nearest = self._search_layer(
                v, entry_points, self.ef_construction, layer
            )
            cap = self.m0 if layer == 0 else self.m
            chosen = self._select_neighbors(nearest, self.m)
            self._graph[pos][layer] = list(chosen)
            for neighbor in chosen:
                links = self._graph[neighbor][layer]
                links.append(pos)
                if len(links) > cap:
                    base = self._vectors[neighbor]
                    ranked = sorted(
                        zip(self._dists(base, links).tolist(), links)
                    )
                    self._graph[neighbor][layer] = self._select_neighbors(
                        ranked, cap
                    )
            entry_points = [p for _, p in nearest] or [cur]

        if level > self._max_level:
            self._entry = pos
            self._max_level = level

    # -- search ---------------------------------------------------------

    def _greedy_step(self, v: np.ndarray, start: int, layer: int) -> int:
        """Hill-climb to the locally nearest node of one upper layer."""
        cur = start
        cur_dist = float(self._dists(v, [cur])[0])
        improved = True
        while improved:
            improved = False
            neighbors = self._graph[cur][layer]
            self._hops += 1
            if not neighbors:
                break
            dists = self._dists(v, neighbors)
            self._candidates += len(neighbors)
            best = int(np.argmin(dists))
            if dists[best] < cur_dist:
                cur = neighbors[best]
                cur_dist = float(dists[best])
                improved = True
        return cur

    def _search_layer(
        self, v: np.ndarray, entry_points: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        """Beam search of one layer; returns up to ``ef`` nearest as
        (distance, position), nearest first."""
        dists = self._dists(v, entry_points)
        self._candidates += len(entry_points)
        visited = set(entry_points)
        frontier = [(float(d), p) for d, p in zip(dists, entry_points)]
        heapq.heapify(frontier)
        # max-heap (negated) of the best ef found so far
        best = [(-d, p) for d, p in frontier]
        heapq.heapify(best)
        while len(best) > ef:
            heapq.heappop(best)
        while frontier:
            dist, node = heapq.heappop(frontier)
            if len(best) >= ef and dist > -best[0][0]:
                break
            self._hops += 1
            fresh = [
                p for p in self._graph[node][layer] if p not in visited
            ]
            if not fresh:
                continue
            visited.update(fresh)
            fresh_dists = self._dists(v, fresh)
            self._candidates += len(fresh)
            for d, p in zip(fresh_dists, fresh):
                d = float(d)
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(frontier, (d, p))
                    heapq.heappush(best, (-d, p))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-negated, p) for negated, p in best)

    def search(
        self, query, k: int, *, ef: int | None = None
    ) -> list[tuple[float, int]]:
        """Approximate k nearest neighbors: ``[(distance, id), ...]``
        nearest first. ``ef`` (defaulting to the index's ``ef_search``)
        is the beam width — wider is slower and more exact."""
        if k <= 0 or self._n == 0:
            return []
        v = self._check_vector(query)
        beam = max(int(ef) if ef is not None else self.ef_search, k)
        self._hops = 0
        self._candidates = 0
        cur = self._entry
        for layer in range(self._max_level, 0, -1):
            cur = self._greedy_step(v, cur, layer)
        nearest = self._search_layer(v, [cur], beam, 0)
        out = [(dist, self._ids[p]) for dist, p in nearest[:k]]
        self.last_stats = {
            "hops": self._hops,
            "candidates": self._candidates,
        }
        self._metric_probes.inc()
        self._metric_hops.observe(self._hops)
        self._metric_candidates.observe(self._candidates)
        self._metric_recall.set(expected_recall(beam, k))
        return out

    def query_knn(self, query, k: int) -> list[tuple[float, int]]:
        """BallTree-compatible alias (searched at this index's
        ``ef_search``)."""
        return self.search(query, k)

    def params(self) -> dict:
        return {
            "m": self.m,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "seed": self.seed,
        }

    # -- persistence ----------------------------------------------------

    def to_value(self) -> dict:
        """Snapshot for the catalog's heap-persisted index pages: the
        adjacency lists flatten to three int64 arrays (CSR over the
        (node, layer) pairs in insertion order)."""
        counts: list[int] = []
        flat: list[int] = []
        for layers in self._graph:
            for links in layers:
                counts.append(len(links))
                flat.extend(links)
        return {
            "dim": self.dim,
            "m": self.m,
            "ef_construction": self.ef_construction,
            "ef_search": self.ef_search,
            "seed": self.seed,
            "entry": self._entry,
            "max_level": self._max_level,
            "ids": np.array(self._ids, dtype=np.int64),
            "levels": np.array(self._levels, dtype=np.int64),
            "vectors": np.array(self._vectors[: self._n], dtype=np.float64),
            "counts": np.array(counts, dtype=np.int64),
            "flat": np.array(flat, dtype=np.int64),
        }

    @classmethod
    def from_value(cls, value: dict, *, metrics=None) -> "HNSWIndex":
        """Rebuild from a snapshot, validating its internal consistency
        so a half-written or bit-flipped graph raises (and the catalog
        quarantines) instead of silently mis-searching."""
        index = cls(
            int(value["dim"]),
            m=int(value["m"]),
            ef_construction=int(value["ef_construction"]),
            ef_search=int(value["ef_search"]),
            seed=int(value["seed"]),
            metrics=metrics,
        )
        ids = np.asarray(value["ids"], dtype=np.int64)
        levels = np.asarray(value["levels"], dtype=np.int64)
        vectors = np.asarray(value["vectors"], dtype=np.float64)
        counts = np.asarray(value["counts"], dtype=np.int64)
        flat = np.asarray(value["flat"], dtype=np.int64)
        n = len(ids)
        if vectors.shape != (n, index.dim) or len(levels) != n:
            raise ValueError(
                f"hnsw snapshot shape mismatch: {n} ids, "
                f"{vectors.shape} vectors, {len(levels)} levels"
            )
        if len(counts) != int((levels + 1).sum()) or counts.sum() != len(flat):
            raise ValueError("hnsw snapshot adjacency arrays disagree")
        if n and (flat.min(initial=0) < 0 or flat.max(initial=0) >= n):
            raise ValueError("hnsw snapshot neighbor out of range")
        entry = int(value["entry"])
        max_level = int(value["max_level"])
        if n and not (0 <= entry < n and levels[entry] == max_level):
            raise ValueError("hnsw snapshot entry point is inconsistent")
        index._n = n
        index._vectors = vectors.copy()
        index._ids = [int(i) for i in ids]
        index._id_set = set(index._ids)
        index._levels = [int(l) for l in levels]
        graph: list[list[list[int]]] = []
        cursor = 0
        offset = 0
        for level in index._levels:
            layers = []
            for _ in range(level + 1):
                span = int(counts[cursor])
                cursor += 1
                layers.append([int(p) for p in flat[offset : offset + span]])
                offset += span
            graph.append(layers)
        index._graph = graph
        index._entry = entry
        index._max_level = max_level
        return index
