"""Random-hyperplane locality-sensitive hashing.

Section 7.3 closes with: "For others, locality sensitive hashing or
similar approximations may suffice" as an alternative to exact
multidimensional indexing. This module implements that suggestion —
sign-random-projection LSH (Charikar), which approximates angular/cosine
neighbourhoods with O(1) probes:

* each of ``n_tables`` tables hashes a vector to ``n_bits`` sign bits of
  random projections;
* a query returns every vector sharing a bucket in any table — a candidate
  set that is then verified exactly by the caller.

Recall improves with more tables, precision with more bits; both knobs are
swept by the ablation benchmark.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import IndexError_


class RandomHyperplaneLSH:
    """Approximate nearest-neighbour candidate index."""

    kind = "lsh"

    def __init__(
        self, dim: int, *, n_tables: int = 8, n_bits: int = 12, seed: int = 0
    ) -> None:
        if dim < 1:
            raise IndexError_(f"dim must be >= 1, got {dim}")
        if n_tables < 1 or n_bits < 1:
            raise IndexError_(
                f"n_tables and n_bits must be >= 1, got {n_tables}, {n_bits}"
            )
        if n_bits > 62:
            raise IndexError_(f"n_bits must fit one machine word, got {n_bits}")
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        rng = np.random.default_rng(seed)
        # (tables, bits, dim) stack of hyperplane normals
        self._planes = rng.normal(size=(n_tables, n_bits, dim))
        self._tables: list[dict[int, list]] = [
            defaultdict(list) for _ in range(n_tables)
        ]
        self._count = 0

    def _signatures(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self.dim:
            raise IndexError_(
                f"vector has dim {vector.shape[0]}, index has dim {self.dim}"
            )
        bits = (self._planes @ vector) > 0  # (tables, bits)
        weights = 1 << np.arange(self.n_bits)
        return bits @ weights  # (tables,)

    def insert(self, vector: np.ndarray, payload) -> None:
        for table, signature in zip(self._tables, self._signatures(vector)):
            table[int(signature)].append(payload)
        self._count += 1

    def candidates(self, vector: np.ndarray) -> set:
        """Union of bucket contents across tables (needs exact verification)."""
        out: set = set()
        for table, signature in zip(self._tables, self._signatures(vector)):
            out.update(table[int(signature)])
        return out

    def __len__(self) -> int:
        return self._count
