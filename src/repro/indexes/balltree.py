"""Ball-tree for high-dimensional Euclidean threshold queries.

Section 3.2: "for image matching queries, where we compare features of two
images and threshold the similarity ... a data structure called a Ball-Tree
was the most effective at answering Euclidean threshold queries in
high-dimensional spaces [17]". This implementation follows the classic
construction:

* recursive splits along the direction between two far-apart points (a
  cheap approximation of the principal direction);
* each node stores the centroid and covering radius of its points;
* queries prune with the triangle inequality
  (``|q - center| > r + radius`` => skip the ball).

Build and probe costs grow non-linearly with size and dimension — the
phenomenon Figures 6 and 7 measure — because the covering radii of
high-dimensional balls overlap more, defeating pruning.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


class BallTree:
    """Static Ball-tree over an (n, d) point matrix.

    Parameters
    ----------
    points:
        Float matrix, one row per item.
    ids:
        Optional payload ids (defaults to row numbers).
    leaf_size:
        Maximum points per leaf.
    """

    def __init__(
        self,
        points: np.ndarray,
        ids: list | np.ndarray | None = None,
        *,
        leaf_size: int = 16,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise IndexError_(f"points must be (n, d), got shape {points.shape}")
        if points.shape[0] == 0:
            raise IndexError_("cannot build a Ball-tree over zero points")
        if leaf_size < 1:
            raise IndexError_(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.n, self.dim = points.shape
        if ids is None:
            self.ids = np.arange(self.n)
        else:
            self.ids = np.asarray(ids, dtype=object)
            if len(self.ids) != self.n:
                raise IndexError_(
                    f"{len(self.ids)} ids for {self.n} points"
                )
        self.leaf_size = leaf_size
        # permutation order so each node owns a contiguous slice
        self._order = np.arange(self.n)
        # node arrays, filled by _build
        self._centers: list[np.ndarray] = []
        self._radii: list[float] = []
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._lefts: list[int] = []
        self._rights: list[int] = []
        self.node_count = 0
        self._build(0, self.n)

    # -- construction -----------------------------------------------------

    def _new_node(self, start: int, end: int) -> int:
        chunk = self.points[self._order[start:end]]
        center = chunk.mean(axis=0)
        radius = float(np.sqrt(((chunk - center) ** 2).sum(axis=1).max()))
        node = self.node_count
        self.node_count += 1
        self._centers.append(center)
        self._radii.append(radius)
        self._starts.append(start)
        self._ends.append(end)
        self._lefts.append(-1)
        self._rights.append(-1)
        return node

    def _build(self, start: int, end: int) -> int:
        node = self._new_node(start, end)
        if end - start <= self.leaf_size:
            return node
        order_slice = self._order[start:end]
        chunk = self.points[order_slice]
        # two-far-points split direction
        anchor = chunk[0]
        d_anchor = ((chunk - anchor) ** 2).sum(axis=1)
        p1 = chunk[int(d_anchor.argmax())]
        d_p1 = ((chunk - p1) ** 2).sum(axis=1)
        p2 = chunk[int(d_p1.argmax())]
        direction = p2 - p1
        norm = np.linalg.norm(direction)
        if norm < 1e-12:
            # all points identical: force a leaf
            return node
        projections = chunk @ (direction / norm)
        median = np.median(projections)
        left_mask = projections <= median
        # guard degenerate splits (many ties at the median)
        if left_mask.all() or not left_mask.any():
            left_mask = projections < median
            if left_mask.all() or not left_mask.any():
                half = (end - start) // 2
                left_mask = np.zeros(end - start, dtype=bool)
                left_mask[np.argsort(projections)[:half]] = True
        reordered = np.concatenate(
            [order_slice[left_mask], order_slice[~left_mask]]
        )
        self._order[start:end] = reordered
        split = start + int(left_mask.sum())
        self._lefts[node] = self._build(start, split)
        self._rights[node] = self._build(split, end)
        return node

    # -- queries ------------------------------------------------------------

    def query_radius(self, query: np.ndarray, radius: float) -> list:
        """Ids of all points within Euclidean ``radius`` of ``query``."""
        query = self._check_query(query)
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        out: list = []
        stack = [0]
        radius_sq = radius * radius
        while stack:
            node = stack.pop()
            gap = np.linalg.norm(query - self._centers[node])
            if gap > radius + self._radii[node]:
                continue
            left = self._lefts[node]
            if left < 0:
                idx = self._order[self._starts[node] : self._ends[node]]
                chunk = self.points[idx]
                dist_sq = ((chunk - query) ** 2).sum(axis=1)
                hits = idx[dist_sq <= radius_sq]
                out.extend(self.ids[i] for i in hits)
            else:
                stack.append(left)
                stack.append(self._rights[node])
        return out

    def query_knn(self, query: np.ndarray, k: int) -> list[tuple[float, object]]:
        """The ``k`` nearest ids as (distance, id), nearest first."""
        query = self._check_query(query)
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        best: list[tuple[float, int]] = []  # (distance, row) max-heap by dist

        def worst() -> float:
            return best[-1][0] if len(best) >= k else np.inf

        def visit(node: int) -> None:
            gap = np.linalg.norm(query - self._centers[node])
            if gap - self._radii[node] > worst():
                return
            left = self._lefts[node]
            if left < 0:
                idx = self._order[self._starts[node] : self._ends[node]]
                chunk = self.points[idx]
                dists = np.sqrt(((chunk - query) ** 2).sum(axis=1))
                for dist, row in zip(dists, idx):
                    if dist < worst() or len(best) < k:
                        best.append((float(dist), int(row)))
                        best.sort(key=lambda pair: pair[0])
                        del best[k:]
            else:
                right = self._rights[node]
                gap_left = np.linalg.norm(query - self._centers[left])
                gap_right = np.linalg.norm(query - self._centers[right])
                first, second = (
                    (left, right) if gap_left <= gap_right else (right, left)
                )
                visit(first)
                visit(second)

        visit(0)
        return [(dist, self.ids[row]) for dist, row in best]

    def count_radius(self, query: np.ndarray, radius: float) -> int:
        return len(self.query_radius(query, radius))

    def query_radius_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list]:
        """Radius query for many probes at once.

        Walks the tree once with the whole probe set, testing the pruning
        bound for all still-active probes per node with one vectorized
        distance computation — the batched probing mode similarity joins
        use (per-probe Python overhead amortizes across the batch).
        Returns one id list per query row.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise IndexError_(
                f"queries must be (m, {self.dim}), got shape {queries.shape}"
            )
        if radius < 0:
            raise IndexError_(f"radius must be non-negative, got {radius}")
        results: list[list] = [[] for _ in range(queries.shape[0])]
        radius_sq = radius * radius
        stack: list[tuple[int, np.ndarray]] = [
            (0, np.arange(queries.shape[0]))
        ]
        while stack:
            node, active = stack.pop()
            center = self._centers[node]
            gaps = np.sqrt(((queries[active] - center) ** 2).sum(axis=1))
            survivors = active[gaps <= radius + self._radii[node]]
            if survivors.size == 0:
                continue
            left = self._lefts[node]
            if left < 0:
                idx = self._order[self._starts[node] : self._ends[node]]
                chunk = self.points[idx]
                # (survivors, leaf) distance matrix in one shot
                dists_sq = (
                    ((queries[survivors][:, None, :] - chunk[None, :, :]) ** 2)
                    .sum(axis=2)
                )
                hit_rows, hit_cols = np.nonzero(dists_sq <= radius_sq)
                for row, col in zip(hit_rows, hit_cols):
                    results[int(survivors[row])].append(self.ids[idx[col]])
            else:
                stack.append((left, survivors))
                stack.append((self._rights[node], survivors))
        return results

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self.dim:
            raise IndexError_(
                f"query has dim {query.shape[0]}, tree has dim {self.dim}"
            )
        return query

    def __len__(self) -> int:
        return self.n
