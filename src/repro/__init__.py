"""DeepLens reproduction: a visual data management system.

Reproduces *DeepLens: Towards a Visual Data Management System* (Krishnan,
Dziedzic, Elmore — CIDR 2019): a dataflow query processor over collections
of image patches, with a storage layer (frame / encoded / segmented files),
single- and multi-dimensional indexes, tuple-level lineage, typed visual
ETL, and a cost-based optimizer aware of accuracy as well as latency.

Quickstart::

    from repro import DeepLens
    from repro.core.expressions import Attr
    from repro.datasets import TrafficCamDataset

    dataset = TrafficCamDataset(scale=0.02, seed=7)
    with DeepLens(workdir) as db:
        video = db.ingest_video("cam0", dataset.frames(), layout="segmented")
        detections = db.run_etl(video, db.generators.object_detector())
        db.materialize(detections, name="detections")
        db.create_index("detections", on="label", kind="hash")
        n = db.scan("detections").filter(Attr("label") == "car").count()
"""

from repro.errors import DeepLensError

__version__ = "1.0.0"

__all__ = ["DeepLensError", "DeepLens", "__version__"]


def __getattr__(name: str):
    # DeepLens pulls in the full query stack; import lazily so lightweight
    # uses of the substrates do not pay for it.
    if name == "DeepLens":
        from repro.core.session import DeepLens

        return DeepLens
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
