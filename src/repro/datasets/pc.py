"""PC: the personal-computer image corpus.

Paper spec (Section 6.1): "779 photographs, screenshots, and document
scans" of varying format and size. The synthetic corpus mixes the same
three kinds:

* **photographs** — single-frame rendered scenes with a few saturated
  objects on textured backgrounds, at varied resolutions;
* **screenshots** — light UI canvases with window chrome and short text;
* **document scans** — white pages of glyph-font text lines with scanner
  noise.

Ground truth carries (a) the q1 near-duplicate pairs — a fraction of images
are re-exports of earlier ones with brightness shift, sensor noise, and a
small translation — and (b) the q5 text index (which strings appear in
which image), since documents and screenshots know what they stamped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.datasets.words import sample_sentence, sample_words
from repro.vision import glyphs
from repro.vision.render import Renderer
from repro.vision.scene import ObjectState, Scene, SceneObject

PAPER_SPEC = {"images": 779, "kinds": ("photo", "screenshot", "document")}

_OBJECT_PALETTE = [
    (210, 45, 45), (45, 90, 210), (230, 150, 35), (60, 180, 75),
    (170, 45, 200), (45, 180, 180),
]


@dataclass
class PCImage:
    """One corpus image with its provenance and text ground truth."""

    image_id: str
    kind: str  # 'photo' | 'screenshot' | 'document'
    pixels: np.ndarray
    text: str = ""
    duplicate_of: str | None = None
    words: frozenset[str] = field(default_factory=frozenset)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.pixels.shape


class PCDataset:
    """Synthetic personal-computer corpus with duplicate and text truth."""

    name = "pc"

    def __init__(
        self,
        *,
        scale: float = 0.1,
        seed: int = 41,
        duplicate_fraction: float = 0.08,
    ) -> None:
        if not 0 < scale <= 1.0:
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        if not 0 <= duplicate_fraction < 0.5:
            raise DatasetError(
                f"duplicate_fraction must be in [0, 0.5), got {duplicate_fraction}"
            )
        self.seed = seed
        n_images = max(int(PAPER_SPEC["images"] * scale), 12)
        self.images: list[PCImage] = []
        self._rng = np.random.default_rng(seed)
        n_duplicates = int(n_images * duplicate_fraction)
        n_originals = n_images - n_duplicates
        for index in range(n_originals):
            self.images.append(self._make_original(index))
        originals = list(self.images)
        for index in range(n_duplicates):
            source = originals[int(self._rng.integers(0, len(originals)))]
            self.images.append(self._make_duplicate(n_originals + index, source))

    # -- generation ---------------------------------------------------------

    def _make_original(self, index: int) -> PCImage:
        kind_roll = self._rng.random()
        if kind_roll < 0.5:
            return self._make_photo(index)
        if kind_roll < 0.75:
            return self._make_screenshot(index)
        return self._make_document(index)

    def _make_photo(self, index: int) -> PCImage:
        rng = self._rng
        height = int(rng.integers(100, 200))
        width = int(rng.integers(140, 280))
        scene = Scene(width, height, 1, name=f"photo-{index}")
        for obj_idx in range(int(rng.integers(1, 4))):
            color = _OBJECT_PALETTE[int(rng.integers(0, len(_OBJECT_PALETTE)))]
            category = "vehicle" if rng.random() < 0.5 else "person"
            obj_w = float(rng.uniform(20, width * 0.3))
            obj_h = min(obj_w * (0.45 if category == "vehicle" else 2.2), height * 0.55)
            cy_lo = height * 0.35 + obj_h / 2
            cy_hi = max(height - obj_h / 2 - 2, cy_lo + 1)
            obj = SceneObject(f"photo{index}-obj{obj_idx}", category, color)
            obj.states = {
                0: ObjectState(
                    frame=0,
                    cx=float(rng.uniform(obj_w, max(width - obj_w, obj_w + 1))),
                    cy=float(rng.uniform(cy_lo, cy_hi)),
                    width=obj_w,
                    height=obj_h,
                    depth=float(rng.uniform(5, 30)),
                )
            }
            scene.add(obj)
        pixels = Renderer(scene, seed=int(rng.integers(0, 2**31))).render(0)
        return PCImage(image_id=f"pc-{index:04d}", kind="photo", pixels=pixels)

    def _make_screenshot(self, index: int) -> PCImage:
        rng = self._rng
        height, width = 150, 260
        # every app has its own theme: background shade, title-bar hue,
        # accent colour and placement all vary, so two different
        # screenshots are *not* colour-space near-duplicates
        background = float(rng.integers(170, 250))
        canvas = np.full((height, width, 3), background, dtype=np.float64)
        bar_color = tuple(int(c) for c in rng.integers(40, 200, size=3))
        canvas[:14, :] = bar_color
        title = sample_sentence(rng, 2)
        glyphs.stamp_text(canvas, title, 4, 3, scale=1, color=(250, 250, 250))
        n_lines = int(rng.integers(3, 7))
        lines = [
            sample_sentence(rng, int(rng.integers(2, 5))) for _ in range(n_lines)
        ]
        for line_idx, line in enumerate(lines):
            glyphs.stamp_text(
                canvas, line, 8, 24 + 16 * line_idx, scale=1, color=(40, 40, 50)
            )
        accent = tuple(int(c) for c in rng.integers(60, 230, size=3))
        ax = int(rng.integers(130, 200))
        ay = int(rng.integers(110, 130))
        aw = int(rng.integers(40, min(width - ax - 2, 90)))
        canvas[ay : ay + 22, ax : ax + aw] = accent
        glyphs.stamp_text(
            canvas, "OK", ax + aw // 2 - 5, ay + 7, scale=1, color=(255, 255, 255)
        )
        text = "\n".join([title] + lines)
        return PCImage(
            image_id=f"pc-{index:04d}",
            kind="screenshot",
            pixels=np.clip(canvas, 0, 255).astype(np.uint8),
            text=text,
            words=frozenset(text.replace("\n", " ").split(" ")),
        )

    def _make_document(self, index: int) -> PCImage:
        rng = self._rng
        height, width = 220, 170
        # scanners and paper stocks differ: page tint, ink density, margins
        # and line pitch vary per document
        tint = rng.integers(226, 254, size=3).astype(np.float64)
        canvas = np.tile(tint, (height, width, 1))
        ink = tuple(int(c) for c in rng.integers(10, 70, size=3))
        font_scale = int(rng.integers(1, 3))
        pitch = int(rng.integers(12, 20)) * font_scale
        margin = int(rng.integers(6, 18))
        top = 10
        # a third of documents carry a letterhead band, each its own colour
        if rng.random() < 0.35:
            band = tuple(int(c) for c in rng.integers(30, 220, size=3))
            band_h = int(rng.integers(10, 24))
            canvas[:band_h, :] = band
            top = band_h + 6
        n_lines = max(int(rng.integers(4, max((height - top) // pitch, 5))), 2)
        lines = [sample_sentence(rng, int(rng.integers(2, 4))) for _ in range(n_lines)]
        for line_idx, line in enumerate(lines):
            y = top + pitch * line_idx
            if y + 7 * font_scale >= height:
                break
            glyphs.stamp_text(
                canvas, line, margin, y, scale=font_scale, color=ink
            )
        # scanner noise: mild grain over the whole page
        canvas += rng.normal(0, float(rng.uniform(1.0, 3.0)), canvas.shape)
        text = "\n".join(lines)
        return PCImage(
            image_id=f"pc-{index:04d}",
            kind="document",
            pixels=np.clip(canvas, 0, 255).astype(np.uint8),
            text=text,
            words=frozenset(text.replace("\n", " ").split(" ")),
        )

    def _make_duplicate(self, index: int, source: PCImage) -> PCImage:
        rng = self._rng
        pixels = source.pixels.astype(np.float64)
        pixels += float(rng.uniform(-2, 2))  # slight exposure drift
        pixels += rng.normal(0, 1.0, pixels.shape)  # re-encode noise
        shift = int(rng.integers(-1, 2))
        if shift:
            # translate with edge replication (a wrap would fabricate a
            # high-gradient seam no real re-export has)
            pixels = np.roll(pixels, shift, axis=1)
            if shift > 0:
                pixels[:, :shift] = pixels[:, shift : shift + 1]
            else:
                pixels[:, shift:] = pixels[:, shift - 1 : shift]
        return PCImage(
            image_id=f"pc-{index:04d}",
            kind=source.kind,
            pixels=np.clip(pixels, 0, 255).astype(np.uint8),
            text=source.text,
            duplicate_of=source.image_id,
            words=source.words,
        )

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self):
        return iter(self.images)

    def by_id(self, image_id: str) -> PCImage:
        for image in self.images:
            if image.image_id == image_id:
                return image
        raise DatasetError(f"no image {image_id!r} in the PC dataset")

    # -- query-level ground truth -------------------------------------------

    def duplicate_pairs(self) -> set[frozenset[str]]:
        """q1 truth: unordered near-duplicate id pairs."""
        return {
            frozenset((image.image_id, image.duplicate_of))
            for image in self.images
            if image.duplicate_of is not None
        }

    def images_with_word(self, word: str) -> list[str]:
        """q5 truth: ids of images whose text contains ``word`` (in id order)."""
        word = word.upper()
        return sorted(
            image.image_id for image in self.images if word in image.words
        )

    def present_words(self) -> set[str]:
        """Every word that appears in at least one image."""
        out: set[str] = set()
        for image in self.images:
            out |= image.words
        return out
