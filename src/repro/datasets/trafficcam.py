"""TrafficCam: the CCTV traffic-video dataset.

Paper spec (Section 6.1): "24 mins and 30 secs of high-definition (1080p)
traffic camera video (35280 frames)". The synthetic equivalent keeps the
structure — a fixed roadside camera, vehicles driving through lanes toward
the camera, pedestrians crossing on a walkway — at a configurable ``scale``
(fraction of the paper's frame count) and resolution.

Ground truth (identities, categories, boxes, metric depth) comes straight
from the scene, which is what lets Figure 2 and Table 1 report
precision/recall without the paper's manual annotation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.vision.render import Renderer
from repro.vision.scene import Camera, GroundTruthBox, Scene, SceneObject, linear_states

PAPER_SPEC = {
    "frames": 35_280,
    "resolution": (1080, 1920),
    "duration_seconds": 24 * 60 + 30,
    "fps": 24,
}

# Identity colours are spaced at the golden angle *within a disjoint hue
# half-circle per category*: vehicles take 0-168 degrees, pedestrians
# 186-354. Within a category identities stay maximally separable in colour
# space (what appearance matching, q4, depends on); across categories hues
# never collide, so a vehicle can never be confused with a pedestrian by
# colour alone — only by the detector's label noise, which is the Table 1
# mechanism under study.
_GOLDEN_ANGLE = 137.50776405


def _identity_color(
    index: int, *, offset: float, value: float, hue_base: float = 0.0
) -> tuple[int, int, int]:
    hue = (hue_base + (offset + index * _GOLDEN_ANGLE) % 168.0) % 360.0
    sector = hue / 60.0
    chroma = value * 0.82
    x = chroma * (1.0 - abs(sector % 2.0 - 1.0))
    if sector < 1:
        rgb = (chroma, x, 0.0)
    elif sector < 2:
        rgb = (x, chroma, 0.0)
    elif sector < 3:
        rgb = (0.0, chroma, x)
    elif sector < 4:
        rgb = (0.0, x, chroma)
    elif sector < 5:
        rgb = (x, 0.0, chroma)
    else:
        rgb = (chroma, 0.0, x)
    base = value - chroma
    return tuple(int(round((channel + base) * 255)) for channel in rgb)


@dataclass(frozen=True)
class TrafficCamSpec:
    """Resolved generation parameters for one TrafficCam instance."""

    n_frames: int
    width: int
    height: int
    n_vehicles: int
    n_pedestrians: int
    seed: int


class TrafficCamDataset:
    """Synthetic roadside CCTV video with full ground truth."""

    name = "trafficcam"

    def __init__(
        self,
        *,
        scale: float = 0.01,
        width: int = 320,
        height: int = 180,
        seed: int = 7,
        vehicles_per_100_frames: float = 4.0,
        pedestrians_per_100_frames: float = 3.0,
    ) -> None:
        if not 0 < scale <= 1.0:
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        n_frames = max(int(PAPER_SPEC["frames"] * scale), 16)
        n_vehicles = max(int(n_frames / 100.0 * vehicles_per_100_frames), 2)
        n_pedestrians = max(int(n_frames / 100.0 * pedestrians_per_100_frames), 2)
        self.spec = TrafficCamSpec(
            n_frames=n_frames,
            width=width,
            height=height,
            n_vehicles=n_vehicles,
            n_pedestrians=n_pedestrians,
            seed=seed,
        )
        self.scene = self._build_scene()
        self._renderer = Renderer(self.scene, seed=seed)

    # -- scene construction -----------------------------------------------

    def _build_scene(self) -> Scene:
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        camera = Camera(
            horizon_y=spec.height * 0.25,
            focal=spec.height * 1.2,
            cam_height=5.0,
        )
        scene = Scene(
            spec.width, spec.height, spec.n_frames, camera=camera, name=self.name
        )
        lanes = [-5.5, -2.5, 2.5, 5.5]  # metres from the optical axis
        for index in range(spec.n_vehicles):
            scene.add(self._make_vehicle(scene, rng, index, lanes))
        for index in range(spec.n_pedestrians):
            scene.add(self._make_pedestrian(scene, rng, index))
        return scene

    def _make_vehicle(
        self, scene: Scene, rng: np.random.Generator, index: int, lanes: list[float]
    ) -> SceneObject:
        spec = self.spec
        color = _identity_color(
            index,
            offset=float(rng.uniform(0, 12)),
            value=float(rng.uniform(0.75, 0.92)),
            hue_base=0.0,
        )
        lane = lanes[index % len(lanes)]
        duration = int(rng.integers(40, 90))
        start = int(rng.integers(0, max(spec.n_frames - duration // 2, 1)))
        frames = range(start, min(start + duration, spec.n_frames))
        # drive toward the camera: far to near
        vehicle = SceneObject(f"veh-{index}", "vehicle", color)
        vehicle.states = linear_states(
            scene.camera, spec.width, frames,
            depth0=float(rng.uniform(32, 45)),
            depth1=float(rng.uniform(5, 8)),
            lateral0=lane,
            lateral1=lane,
            real_width=float(rng.uniform(3.8, 4.6)),
            real_height=float(rng.uniform(1.4, 1.8)),
        )
        return vehicle

    def _make_pedestrian(
        self, scene: Scene, rng: np.random.Generator, index: int
    ) -> SceneObject:
        spec = self.spec
        color = _identity_color(
            index,
            offset=float(rng.uniform(0, 12)),
            value=float(rng.uniform(0.72, 0.9)),
            hue_base=186.0,
        )
        duration = int(rng.integers(50, 110))
        start = int(rng.integers(0, max(spec.n_frames - duration // 2, 1)))
        frames = range(start, min(start + duration, spec.n_frames))
        # cross the walkway laterally at roughly constant depth
        depth = float(rng.uniform(10, 22))
        direction = 1.0 if rng.random() < 0.5 else -1.0
        lateral0 = -direction * float(rng.uniform(6, 9))
        pedestrian = SceneObject(f"ped-{index}", "person", color)
        pedestrian.states = linear_states(
            scene.camera, spec.width, frames,
            depth0=depth,
            depth1=depth + float(rng.uniform(-1.5, 1.5)),
            lateral0=lateral0,
            lateral1=-lateral0,
            real_width=float(rng.uniform(0.5, 0.65)),
            real_height=float(rng.uniform(1.6, 1.9)),
        )
        return pedestrian

    # -- access -------------------------------------------------------------

    @property
    def n_frames(self) -> int:
        return self.spec.n_frames

    @property
    def camera(self) -> Camera:
        return self.scene.camera

    def frame(self, index: int) -> np.ndarray:
        if not 0 <= index < self.spec.n_frames:
            raise DatasetError(
                f"frame {index} out of range (0..{self.spec.n_frames - 1})"
            )
        return self._renderer.render(index)

    def frames(self) -> Iterator[np.ndarray]:
        """Render every frame in order (the video the loader ingests)."""
        return self._renderer.render_all()

    def ground_truth(self, frame: int) -> list[GroundTruthBox]:
        return self.scene.ground_truth(frame)

    # -- query-level ground truth -------------------------------------------

    def frames_with_vehicles(self) -> set[int]:
        """q2 truth: frame indices containing at least one vehicle."""
        out = set()
        for frame in range(self.spec.n_frames):
            if any(
                box.category == "vehicle" for box in self.scene.ground_truth(frame)
            ):
                out.add(frame)
        return out

    def distinct_pedestrians(self) -> set[str]:
        """q4 truth: identities of pedestrians that ever appear on screen."""
        return {
            box.object_id
            for box in self.scene.all_ground_truth()
            if box.category == "person"
        }

    def behind_pairs(self, frame: int, margin: float = 1.0) -> set[tuple[str, str]]:
        """q6 truth: pedestrian identity pairs (behind, front) in ``frame``."""
        people = [
            box for box in self.scene.ground_truth(frame) if box.category == "person"
        ]
        return {
            (a.object_id, b.object_id)
            for a in people
            for b in people
            if a.object_id != b.object_id and a.depth > b.depth + margin
        }


