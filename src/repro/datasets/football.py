"""Football: the multi-clip sports dataset.

Paper spec (Section 6.1): "15 low-definition (720p) videos of American
football clips of the same team ranging from 30 secs to 1 mins (15244
total images)". The synthetic equivalent generates 15 independent *plays*:
each clip has the same team (same jersey hue) with numbered players moving
across the field, one of whom is the tracked player q3 follows. Jersey
numbers are stamped with the glyph font, so the OCR patch generator can
genuinely read (and misread) them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.vision.render import Renderer
from repro.vision.scene import Camera, GroundTruthBox, Scene, SceneObject, linear_states

PAPER_SPEC = {
    "clips": 15,
    "resolution": (720, 1280),
    "total_frames": 15_244,
    "clip_seconds": (30, 60),
}

#: jersey colour shared by the team (identity is the number, not the hue)
TEAM_COLOR = (200, 45, 45)
#: clothing palette for non-team extras (referees etc.)
_EXTRA_COLOR = (40, 80, 200)


@dataclass(frozen=True)
class FootballClip:
    """One play: a scene plus its tracked-player annotation."""

    clip_id: str
    scene: Scene
    renderer: Renderer
    tracked_number: str
    player_numbers: tuple[str, ...]

    @property
    def n_frames(self) -> int:
        return self.scene.n_frames

    def frames(self) -> Iterator[np.ndarray]:
        return self.renderer.render_all()

    def frame(self, index: int) -> np.ndarray:
        return self.renderer.render(index)

    def ground_truth(self, frame: int) -> list[GroundTruthBox]:
        return self.scene.ground_truth(frame)

    def tracked_trajectory(self) -> list[tuple[int, tuple[int, int, int, int]]]:
        """q3 truth: (frame, bbox) of the tracked player across the clip."""
        out = []
        for frame in range(self.scene.n_frames):
            for box in self.scene.ground_truth(frame):
                if box.text == self.tracked_number:
                    out.append((frame, box.bbox))
        return out


class FootballDataset:
    """15 synthetic football plays with numbered players."""

    name = "football"

    def __init__(
        self,
        *,
        scale: float = 0.01,
        n_clips: int = PAPER_SPEC["clips"],
        width: int = 320,
        height: int = 180,
        players_per_clip: int = 6,
        seed: int = 23,
        tracked_number: str = "7",
    ) -> None:
        if not 0 < scale <= 1.0:
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        if not 1 <= n_clips <= 64:
            raise DatasetError(f"n_clips must be in 1..64, got {n_clips}")
        self.tracked_number = tracked_number
        self.seed = seed
        frames_per_clip = max(int(PAPER_SPEC["total_frames"] * scale / n_clips), 12)
        self.clips: list[FootballClip] = [
            self._build_clip(index, frames_per_clip, width, height, players_per_clip)
            for index in range(n_clips)
        ]

    def _build_clip(
        self, index: int, n_frames: int, width: int, height: int, n_players: int
    ) -> FootballClip:
        rng = np.random.default_rng((self.seed, index))
        camera = Camera(
            horizon_y=height * 0.18, focal=height * 1.1, cam_height=9.0
        )
        scene = Scene(width, height, n_frames, camera=camera, name=f"clip-{index}")
        numbers = self._pick_numbers(rng, n_players)
        lateral_slots = np.linspace(-7.5, 7.5, n_players)
        for player_idx, number in enumerate(numbers):
            player = SceneObject(
                f"clip{index}-player-{number}",
                "person",
                TEAM_COLOR,
                label_text=number,
            )
            depth0 = float(rng.uniform(11, 16))
            lateral = float(lateral_slots[player_idx] + rng.uniform(-0.5, 0.5))
            drift = float(rng.uniform(-3.0, 3.0))
            player.states = linear_states(
                camera, width, range(n_frames),
                depth0=depth0,
                depth1=depth0 + float(rng.uniform(-2.0, 2.0)),
                lateral0=lateral,
                lateral1=lateral + drift,
                real_width=1.1,
                real_height=2.1,
            )
            scene.add(player)
        # one referee-like extra so clips are not all-team
        extra = SceneObject(f"clip{index}-ref", "person", _EXTRA_COLOR)
        extra.states = linear_states(
            camera, width, range(n_frames),
            depth0=18.0, depth1=17.0, lateral0=-9.5, lateral1=-9.0,
            real_width=0.6, real_height=1.8,
        )
        scene.add(extra)
        return FootballClip(
            clip_id=f"clip-{index}",
            scene=scene,
            renderer=Renderer(scene, seed=(self.seed * 1000 + index)),
            tracked_number=self.tracked_number,
            player_numbers=tuple(numbers),
        )

    def _pick_numbers(self, rng: np.random.Generator, n_players: int) -> list[str]:
        # the tracked player appears in every clip; teammates get distinct
        # one- or two-digit numbers that avoid the tracked one
        numbers = {self.tracked_number}
        while len(numbers) < n_players:
            numbers.add(str(int(rng.integers(1, 100))))
        ordered = sorted(numbers - {self.tracked_number})
        return [self.tracked_number] + ordered

    # -- access -------------------------------------------------------------

    @property
    def n_clips(self) -> int:
        return len(self.clips)

    @property
    def total_frames(self) -> int:
        return sum(clip.n_frames for clip in self.clips)

    def clip(self, index: int) -> FootballClip:
        if not 0 <= index < len(self.clips):
            raise DatasetError(f"clip {index} out of range (0..{len(self.clips) - 1})")
        return self.clips[index]

    def tracked_trajectories(self) -> dict[str, list[tuple[int, tuple[int, int, int, int]]]]:
        """q3 truth: clip_id -> tracked player's (frame, bbox) sequence."""
        return {clip.clip_id: clip.tracked_trajectory() for clip in self.clips}
