"""Synthetic datasets mirroring the paper's benchmark corpora (Section 6.1).

* :class:`PCDataset` — 779 personal-computer images (photos, screenshots,
  document scans) with near-duplicate and text ground truth.
* :class:`TrafficCamDataset` — roadside CCTV video with vehicles and
  pedestrians, full identity/box/depth ground truth.
* :class:`FootballDataset` — 15 clips of numbered same-team players.

All generators are deterministic per seed and accept ``scale`` (fraction
of the paper's data volume); paper-scale parameters live in each module's
``PAPER_SPEC``.
"""

from repro.datasets.football import FootballClip, FootballDataset
from repro.datasets.pc import PCDataset, PCImage
from repro.datasets.trafficcam import TrafficCamDataset

__all__ = [
    "FootballClip",
    "FootballDataset",
    "PCDataset",
    "PCImage",
    "TrafficCamDataset",
]
