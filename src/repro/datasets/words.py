"""Word stock for synthetic documents, screenshots, and search queries.

Uppercase-only because the glyph font is uppercase; drawn from a fixed list
so q5's target strings are guaranteed to exist (or be absent) by seed.
"""

from __future__ import annotations

import numpy as np

WORDS = [
    "ACCESS", "AGENT", "ALERT", "ANNUAL", "ARCHIVE", "AUDIT", "BALANCE",
    "BANK", "BATCH", "BOARD", "BRIDGE", "BUDGET", "CAMERA", "CAMPUS",
    "CENTER", "CHART", "CLAIM", "CLIENT", "CLOUD", "CODE", "CONTRACT",
    "COUNCIL", "COURT", "CREDIT", "DELTA", "DESIGN", "DETAIL", "DEVICE",
    "DIGEST", "DOCKET", "DRAFT", "ENERGY", "ENGINE", "EXPORT", "FIELD",
    "FILE", "FOCUS", "FORUM", "FRAME", "FUND", "GATEWAY", "GLOBAL",
    "GRANT", "GRAPH", "GROUP", "GUIDE", "HARBOR", "HEALTH", "IMPORT",
    "INDEX", "INPUT", "INVOICE", "JOURNAL", "LEDGER", "LEGAL", "LETTER",
    "LEVEL", "LICENSE", "LIMIT", "LOCAL", "MARKET", "MATRIX", "MEMO",
    "METER", "METRO", "MODEL", "MODULE", "MOTION", "NETWORK", "NOTICE",
    "OFFER", "OFFICE", "ORDER", "OUTPUT", "PANEL", "PAPER", "PARK",
    "PATENT", "PERMIT", "PHASE", "PILOT", "PLAN", "PLAZA", "POLICY",
    "PORTAL", "POWER", "PRESS", "PRICE", "PRIME", "PROFILE", "PROJECT",
    "QUOTA", "RECORD", "REGION", "REPORT", "RESULT", "REVIEW", "ROUTE",
    "SAFETY", "SAMPLE", "SCALE", "SCHEMA", "SCOPE", "SECTOR", "SERIES",
    "SERVER", "SIGNAL", "SOURCE", "STATUS", "STOCK", "STREAM", "STREET",
    "SUMMIT", "SURVEY", "SYSTEM", "TABLE", "TARGET", "TENDER", "TICKET",
    "TOKEN", "TOWER", "TRACK", "TRADE", "TRANSIT", "TREND", "UNION",
    "UPDATE", "VALLEY", "VECTOR", "VENDOR", "VENUE", "VERSION", "VOLUME",
    "WALLET", "WINDOW", "ZONE",
]


def sample_words(rng: np.random.Generator, count: int) -> list[str]:
    """Draw ``count`` words (with replacement) from the stock."""
    indices = rng.integers(0, len(WORDS), size=count)
    return [WORDS[int(idx)] for idx in indices]


def sample_sentence(rng: np.random.Generator, n_words: int) -> str:
    return " ".join(sample_words(rng, n_words))
