"""Typed ETL pipelines (Sections 4.1-4.2).

A :class:`Pipeline` composes patch generators and transformers into one
stage list. Because every stage declares ``output_schema(input_schema)``,
the pipeline can be *validated before any pixel is touched* — composing an
OCR stage after a featurizing stage that replaced pixels with vectors is a
SchemaError at build time, not a crash mid-video. This is the Section 4.2
validation story.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Union

from repro.core.patch import Patch
from repro.core.schema import PatchSchema, frame_schema
from repro.errors import ETLError, SchemaError
from repro.etl.generators import PatchGenerator
from repro.etl.transformers import Transformer

Stage = Union[PatchGenerator, Transformer]


class Pipeline:
    """An ordered list of ETL stages with schema validation."""

    def __init__(
        self,
        stages: list[Stage],
        input_schema: PatchSchema | None = None,
    ) -> None:
        if not stages:
            raise ETLError("a pipeline needs at least one stage")
        for stage in stages:
            if not isinstance(stage, (PatchGenerator, Transformer)):
                raise ETLError(
                    f"stage {stage!r} is neither a PatchGenerator nor a "
                    f"Transformer"
                )
        self.stages = list(stages)
        self.input_schema = input_schema or frame_schema()
        self.output_schema = self.validate()
        #: seconds spent inside run() — the "ETL time" the paper separates
        #: from query time (Section 7.2)
        self.last_run_seconds: float | None = None

    def validate(self) -> PatchSchema:
        """Fold schemas through the stages; raises SchemaError on mismatch."""
        schema = self.input_schema
        for position, stage in enumerate(self.stages):
            try:
                schema = stage.output_schema(schema)
            except (ETLError, SchemaError) as exc:
                raise SchemaError(
                    f"pipeline stage {position} ({stage.name}) rejects its "
                    f"input schema: {exc}"
                ) from exc
        return schema

    def run(self, patches: Iterable[Patch]) -> Iterator[Patch]:
        """Stream patches through every stage (lazy).

        Timing note: because the pipeline is lazy, ``last_run_seconds`` is
        only final once the returned iterator is exhausted.
        """
        started = time.perf_counter()
        stream: Iterable[Patch] = patches
        for stage in self.stages:
            stream = stage(stream)

        def _timed() -> Iterator[Patch]:
            for patch in stream:
                yield patch
            self.last_run_seconds = time.perf_counter() - started

        return _timed()

    def run_to_list(self, patches: Iterable[Patch]) -> list[Patch]:
        """Eager run; ``last_run_seconds`` is valid immediately after."""
        return list(self.run(patches))

    def __repr__(self) -> str:
        names = " | ".join(stage.name for stage in self.stages)
        return f"Pipeline({names})"
