"""Patch transformers (Section 4.1).

"A transformer takes as input an iterator over Patch objects and returns
an iterator over transformed Patch objects." The paper's two experimental
transformers — colour-histogram features and depth prediction — plus the
CNN embedder, each writing its output into the metadata dictionary (and
optionally *replacing* the pixel payload with the feature vector, the
"pre-compressed to features" storage option of Section 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

from repro.core.patch import Patch
from repro.core.schema import Field, PatchSchema
from repro.errors import ETLError
from repro.vision.features import color_histogram, gradient_histogram, marginal_histogram
from repro.vision.models.depth import MonocularDepth
from repro.vision.models.embeddings import TinyEmbedder


class Transformer(ABC):
    """Patch in, transformed patch out (1:1)."""

    name: str = "transformer"

    @abstractmethod
    def transform(self, patch: Patch) -> Patch:
        """Produce the transformed patch."""

    @abstractmethod
    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        """Schema after transformation."""

    def __call__(self, patches: Iterable[Patch]) -> Iterator[Patch]:
        for patch in patches:
            yield self.transform(patch)


class HistogramTransformer(Transformer):
    """Colour-histogram featurizer — the paper's image-matching feature."""

    name = "color-histogram"

    def __init__(
        self,
        *,
        bins: int = 4,
        kind: str = "joint",
        key: str = "hist",
        replace_data: bool = False,
    ) -> None:
        if kind not in ("joint", "marginal"):
            raise ETLError(f"kind must be 'joint' or 'marginal', got {kind!r}")
        self.bins = bins
        self.kind = kind
        self.key = key
        self.replace_data = replace_data

    @property
    def dim(self) -> int:
        return self.bins**3 if self.kind == "joint" else 3 * self.bins

    def transform(self, patch: Patch) -> Patch:
        if self.kind == "joint":
            features = color_histogram(patch.data, bins=self.bins)
        else:
            features = marginal_histogram(patch.data, bins=self.bins)
        data = features if self.replace_data else patch.data
        return patch.derive(data, self.name, self.kind, self.bins, **{self.key: features})

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(f"{self.name} consumes pixel patches")
        schema = input_schema.with_field(Field(self.key, "vector", required=True))
        if self.replace_data:
            schema = schema.as_features(self.dim)
        return schema


class EmbeddingTransformer(Transformer):
    """CNN descriptor featurizer (TinyEmbedder)."""

    name = "embedding"

    def __init__(
        self,
        model: TinyEmbedder,
        *,
        key: str = "emb",
        replace_data: bool = False,
    ) -> None:
        self.model = model
        self.key = key
        self.replace_data = replace_data

    def transform(self, patch: Patch) -> Patch:
        features = self.model.process(patch.data)
        data = features if self.replace_data else patch.data
        return patch.derive(data, self.name, self.model.dim, **{self.key: features})

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(f"{self.name} consumes pixel patches")
        schema = input_schema.with_field(Field(self.key, "vector", required=True))
        if self.replace_data:
            schema = schema.as_features(self.model.dim)
        return schema


class GradientTransformer(Transformer):
    """HOG-style shape featurizer."""

    name = "gradient-histogram"

    def __init__(
        self, *, grid: int = 2, orientations: int = 8, key: str = "hog"
    ) -> None:
        self.grid = grid
        self.orientations = orientations
        self.key = key

    def transform(self, patch: Patch) -> Patch:
        features = gradient_histogram(
            patch.data, grid=self.grid, orientations=self.orientations
        )
        return patch.derive(patch.data, self.name, **{self.key: features})

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(f"{self.name} consumes pixel patches")
        return input_schema.with_field(Field(self.key, "vector", required=True))


class DepthTransformer(Transformer):
    """Depth prediction (the paper's second transformer, for q6).

    Needs a ``bbox`` in frame coordinates — i.e. it composes after an
    object-detection generator; the schema check enforces that.
    """

    name = "depth"

    def __init__(self, model: MonocularDepth, *, key: str = "depth") -> None:
        self.model = model
        self.key = key

    def transform(self, patch: Patch) -> Patch:
        bbox = patch.metadata.get("bbox")
        if bbox is None:
            depth = self.model.process(patch.data)
        else:
            depth = self.model.estimate(tuple(bbox))
        return patch.derive(patch.data, self.name, **{self.key: float(depth)})

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if "bbox" not in input_schema.fields:
            raise ETLError(
                "depth prediction needs upstream 'bbox' metadata; compose "
                "after an object-detection generator"
            )
        return input_schema.with_field(Field(self.key, "float", required=True))


class CropTransformer(Transformer):
    """Geometric crop of each patch (e.g. torso region before jersey OCR)."""

    name = "crop"

    def __init__(
        self,
        *,
        top: float = 0.0,
        bottom: float = 1.0,
        left: float = 0.0,
        right: float = 1.0,
    ) -> None:
        if not (0.0 <= top < bottom <= 1.0 and 0.0 <= left < right <= 1.0):
            raise ETLError(
                f"invalid crop fractions top={top} bottom={bottom} "
                f"left={left} right={right}"
            )
        self.top, self.bottom = top, bottom
        self.left, self.right = left, right

    def transform(self, patch: Patch) -> Patch:
        height, width = patch.data.shape[:2]
        y1, y2 = int(height * self.top), max(int(height * self.bottom), int(height * self.top) + 1)
        x1, x2 = int(width * self.left), max(int(width * self.right), int(width * self.left) + 1)
        return patch.derive(
            np.ascontiguousarray(patch.data[y1:y2, x1:x2]),
            self.name,
            (self.top, self.bottom, self.left, self.right),
        )

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(f"{self.name} consumes pixel patches")
        # resolution is no longer guaranteed after cropping
        return PatchSchema(data_kind="pixels", fields=dict(input_schema.fields))
