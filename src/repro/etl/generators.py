"""Patch generators (Section 4.1).

"These generators take as input an iterator over raw images and return an
iterator over Patch objects." The library mirrors the paper's three
instantiations — object detection, optical character recognition, and
whole-image patches — plus a tiling generator for fixed-grid workloads.

Every generator declares its output schema (Section 4.2), including closed
label domains where the underlying model has one, and extends each
patch's lineage chain through :meth:`Patch.derive`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.core.patch import Patch
from repro.core.schema import Field, PatchSchema
from repro.errors import ETLError
from repro.vision.models.ocr import TemplateOCR
from repro.vision.models.ssd import SyntheticSSD


class PatchGenerator(ABC):
    """Raw-image patches in, derived patches out."""

    name: str = "generator"

    @abstractmethod
    def generate(self, patch: Patch) -> list[Patch]:
        """Derive zero or more patches from one input patch."""

    @abstractmethod
    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        """Schema of the generated collection given the input's."""

    def __call__(self, patches: Iterable[Patch]) -> Iterator[Patch]:
        for patch in patches:
            yield from self.generate(patch)


class ObjectDetectorGenerator(PatchGenerator):
    """Run a detector; one cropped patch per detection.

    Output metadata: ``label`` (closed domain from the model), ``score``,
    ``bbox`` (frame coordinates) — the paper's ``SSDPatch``.
    """

    name = "object-detector"

    def __init__(self, model: SyntheticSSD, *, min_score: float = 0.0) -> None:
        self.model = model
        self.min_score = min_score

    def generate(self, patch: Patch) -> list[Patch]:
        if patch.data.ndim != 3:
            raise ETLError(
                f"object detection needs (H, W, 3) pixels, got {patch.data.shape}"
            )
        out = []
        for detection in self.model.process(patch.data):
            if detection.score < self.min_score:
                continue
            out.append(
                patch.derive(
                    detection.crop(patch.data),
                    "detect",
                    detection.bbox,
                    label=detection.label,
                    score=float(detection.score),
                    bbox=tuple(int(v) for v in detection.bbox),
                )
            )
        return out

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(
                f"{self.name} consumes pixel patches, upstream produces "
                f"{input_schema.data_kind!r}"
            )
        return PatchSchema(
            data_kind="pixels",
            fields=dict(input_schema.fields),
        ).with_fields(
            Field("label", "str", domain=self.model.label_domain, required=True),
            Field("score", "float", required=True),
            Field("bbox", "bbox", required=True),
        )


class OCRGenerator(PatchGenerator):
    """Run OCR over incoming patches; emits patches that contain text.

    Output metadata: ``text`` (full recognized string), ``tokens`` (tuple
    of words), ``ocr_conf``. Patches with no recognizable text are dropped
    (set ``keep_empty=True`` to keep them with empty text).
    """

    name = "ocr"

    def __init__(self, model: TemplateOCR, *, keep_empty: bool = False) -> None:
        self.model = model
        self.keep_empty = keep_empty

    def generate(self, patch: Patch) -> list[Patch]:
        result = self.model.process(patch.data)
        if not result.text and not self.keep_empty:
            return []
        return [
            patch.derive(
                patch.data,
                "ocr",
                text=result.text,
                tokens=tuple(result.tokens()),
                ocr_conf=float(result.confidence),
            )
        ]

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(
                f"{self.name} consumes pixel patches, upstream produces "
                f"{input_schema.data_kind!r}"
            )
        return input_schema.with_fields(
            Field("text", "str", required=not self.keep_empty),
            Field("ocr_conf", "float"),
        )


class WholeImageGenerator(PatchGenerator):
    """Pass frames through as single whole-image patches (Section 4.1)."""

    name = "whole-image"

    def generate(self, patch: Patch) -> list[Patch]:
        return [patch.derive(patch.data, "whole")]

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        return input_schema


class TileGenerator(PatchGenerator):
    """Split each frame into a fixed grid of tiles with bbox metadata."""

    name = "tiles"

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ETLError(f"grid must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    def generate(self, patch: Patch) -> list[Patch]:
        height, width = patch.data.shape[:2]
        if height < self.rows or width < self.cols:
            raise ETLError(
                f"frame {height}x{width} smaller than the {self.rows}x"
                f"{self.cols} tile grid"
            )
        out = []
        row_edges = [round(r * height / self.rows) for r in range(self.rows + 1)]
        col_edges = [round(c * width / self.cols) for c in range(self.cols + 1)]
        for row in range(self.rows):
            for col in range(self.cols):
                y1, y2 = row_edges[row], row_edges[row + 1]
                x1, x2 = col_edges[col], col_edges[col + 1]
                out.append(
                    patch.derive(
                        patch.data[y1:y2, x1:x2],
                        "tile",
                        (x1, y1, x2, y2),
                        bbox=(x1, y1, x2, y2),
                        tile=(row, col),
                    )
                )
        return out

    def output_schema(self, input_schema: PatchSchema) -> PatchSchema:
        if input_schema.data_kind != "pixels":
            raise ETLError(f"{self.name} consumes pixel patches")
        return PatchSchema(
            data_kind="pixels", fields=dict(input_schema.fields)
        ).with_fields(Field("bbox", "bbox", required=True))
