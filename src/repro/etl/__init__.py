"""Visual ETL (Section 4): patch generators, transformers, typed pipelines."""

from repro.etl.generators import (
    ObjectDetectorGenerator,
    OCRGenerator,
    PatchGenerator,
    TileGenerator,
    WholeImageGenerator,
)
from repro.etl.pipeline import Pipeline
from repro.etl.transformers import (
    CropTransformer,
    DepthTransformer,
    EmbeddingTransformer,
    GradientTransformer,
    HistogramTransformer,
    Transformer,
)

__all__ = [
    "CropTransformer",
    "DepthTransformer",
    "EmbeddingTransformer",
    "GradientTransformer",
    "HistogramTransformer",
    "ObjectDetectorGenerator",
    "OCRGenerator",
    "PatchGenerator",
    "Pipeline",
    "TileGenerator",
    "Transformer",
    "WholeImageGenerator",
]
