"""The six benchmark queries (Section 6.2), baseline and optimized plans.

Each query function executes one *plan* and returns a
:class:`~repro.bench.metrics.QueryResult` with the answer, wall-clock query
time (ETL is paid by the workload builder and amortized, per Section 7.2),
and an accuracy score against the synthetic ground truth.

Plans follow the paper's Figure 4 setup: the *baseline* is "the same query
processing engine with no indexes"; the *optimized* plan is the hand-tuned
physical design (prepared by :func:`prepare_traffic_design` /
:func:`prepare_pc_design` so its build cost is visible separately, as in
Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.metrics import (
    PRF,
    QueryResult,
    Timer,
    assign_identity,
    pairwise_cluster_prf,
    set_prf,
)
from repro.bench.workload import (
    HIST_KEY,
    MATCH_KEY,
    FootballWorkload,
    PCWorkload,
    TrafficWorkload,
)
from repro.core.catalog import MaterializedCollection
from repro.core.expressions import Attr
from repro.core.operators import (
    BallTreeSimilarityJoin,
    CollectionScan,
    IndexEqJoin,
    IteratorScan,
    NestedLoopJoin,
    Select,
    cluster_pairs,
)
from repro.errors import QueryError
from repro.indexes import BallTree

#: colour+structure feature distance for near-duplicate images (q1)
Q1_THRESHOLD = 0.18
#: histogram-distance threshold for same-identity pedestrian patches (q4)
Q4_THRESHOLD = 0.45
#: metres of depth separation that counts as "behind" (q6)
Q6_MARGIN = 1.0


# -- physical design preparation ---------------------------------------------


@dataclass
class TrafficDesign:
    """The hand-tuned physical design for the TrafficCam queries."""

    persons: MaterializedCollection
    build_seconds: float


def prepare_traffic_design(workload: TrafficWorkload) -> TrafficDesign:
    """Materialize the person subset and build the tuned indexes.

    q2: hash on label; q4: Ball-tree on person histograms; q6: B+ tree on
    person frame numbers. Build cost is reported for Figure 5/6 analyses.
    """
    db = workload.db
    with Timer() as timer:
        db.create_index("detections", "label", "hash")
        persons = db.materialize(
            (
                patch
                for patch in workload.detections.scan()
                if patch["label"] == "person"
            ),
            "persons",
        )
        db.create_index("persons", HIST_KEY, "balltree")
        db.create_index("persons", "frameno", "btree")
        db.create_index("persons", "bbox", "rtree")
    return TrafficDesign(persons=persons, build_seconds=timer.seconds)


@dataclass
class PCDesign:
    """The hand-tuned physical design for the PC queries."""

    build_seconds: float


def prepare_pc_design(workload: PCWorkload) -> PCDesign:
    """q1: Ball-tree on image histograms; plus the token inverted index."""
    db = workload.db
    with Timer() as timer:
        db.create_index("images", MATCH_KEY, "balltree")
        db.create_index("texts", "tokens", "hash", multi_value=True)
    return PCDesign(build_seconds=timer.seconds)


@dataclass
class FootballDesign:
    """The hand-tuned physical design for q3."""

    build_seconds: float


def prepare_football_design(workload: FootballWorkload) -> FootballDesign:
    with Timer() as timer:
        workload.db.create_index("jerseys", "text", "hash")
    return FootballDesign(build_seconds=timer.seconds)


# -- q1: near-duplicates in PC ---------------------------------------------


def q1_near_duplicates(
    workload: PCWorkload,
    plan: str = "baseline",
    *,
    threshold: float = Q1_THRESHOLD,
    on_the_fly: bool = False,
) -> QueryResult:
    """Find all near-duplicate image pairs in the PC corpus.

    ``baseline``: all-pairs nested-loop histogram matching. ``optimized``:
    Ball-tree similarity self-join (prebuilt index, or built on the fly
    when ``on_the_fly`` — the Figure 5 variant).
    """
    images = workload.images
    with Timer() as timer:
        if plan == "baseline":
            pairs = _nested_loop_pairs(
                list(images.scan(load_data=False)), threshold, key=MATCH_KEY
            )
        elif plan == "optimized":
            candidates = list(images.scan(load_data=False))
            if on_the_fly:
                tree = BallTree(
                    np.stack([patch[MATCH_KEY] for patch in candidates]),
                    ids=[patch.patch_id for patch in candidates],
                )
            else:
                tree = images.index(MATCH_KEY, "balltree")
            probes = np.stack([patch[MATCH_KEY] for patch in candidates])
            pairs = set()
            for patch, hits in zip(
                candidates, tree.query_radius_batch(probes, threshold)
            ):
                for other_id in hits:
                    if int(other_id) != patch.patch_id:
                        pairs.add(frozenset((patch.patch_id, int(other_id))))
        else:
            raise QueryError(f"unknown q1 plan {plan!r}")
        id_pairs = _as_image_id_pairs(pairs, images)
    truth = workload.dataset.duplicate_pairs()
    return QueryResult(
        name="q1",
        plan=plan + ("+otf" if on_the_fly and plan == "optimized" else ""),
        answer=id_pairs,
        seconds=timer.seconds,
        accuracy=set_prf(id_pairs, truth),
    )


def _nested_loop_pairs(
    patches: list, threshold: float, *, key: str = HIST_KEY
) -> set[frozenset]:
    """All-pairs matching through the engine's NestedLoopJoin.

    This is the Figure 4 baseline: "the same query processing engine with
    no indexes" — per-pair predicate evaluation, no vectorization (the
    vectorized/GPU matchers are the separate Figure 8 experiment).
    """

    def theta(a, b) -> bool:
        if a.patch_id >= b.patch_id:
            return False
        diff = a[key] - b[key]
        return float(np.sqrt(np.dot(diff, diff))) <= threshold

    join = NestedLoopJoin(
        IteratorScan(patches), IteratorScan(patches), theta, exclude_self=True
    )
    return {frozenset((left.patch_id, right.patch_id)) for left, right in join}


def _all_pairs_matches(patches: list, threshold: float) -> set[frozenset]:
    features = np.stack([patch[HIST_KEY] for patch in patches])
    out: set[frozenset] = set()
    for i in range(len(patches)):
        dists = np.sqrt(((features[i + 1 :] - features[i]) ** 2).sum(axis=1))
        for offset in np.flatnonzero(dists <= threshold):
            out.add(
                frozenset(
                    (patches[i].patch_id, patches[i + 1 + int(offset)].patch_id)
                )
            )
    return out


def _as_image_id_pairs(pairs: set[frozenset], images) -> set[frozenset]:
    cache: dict[int, str] = {}

    def image_id(patch_id: int) -> str:
        if patch_id not in cache:
            cache[patch_id] = images.get(patch_id)["image_id"]
        return cache[patch_id]

    return {
        frozenset(image_id(patch_id) for patch_id in pair)
        for pair in pairs
        if len(pair) == 2
    }


# -- q2: frames with at least one vehicle ------------------------------------


def q2_vehicle_frames(workload: TrafficWorkload, plan: str = "baseline") -> QueryResult:
    """Count frames of the TrafficCam video containing >= 1 vehicle."""
    detections = workload.detections
    with Timer() as timer:
        if plan == "baseline":
            operator = Select(
                CollectionScan(detections, load_data=False),
                Attr("label") == "vehicle",
            )
            frames = {patch["frameno"] for (patch,) in operator}
        elif plan == "optimized":
            index = detections.index("label", "hash")
            frames = {
                detections.get(patch_id, load_data=False)["frameno"]
                for patch_id in index.lookup("vehicle")
            }
        else:
            raise QueryError(f"unknown q2 plan {plan!r}")
        answer = len(frames)
    truth = workload.dataset.frames_with_vehicles()
    return QueryResult(
        name="q2",
        plan=plan,
        answer=answer,
        seconds=timer.seconds,
        accuracy=set_prf(frames, truth),
    )


# -- q3: track one player's trajectory ----------------------------------------


def q3_player_trajectory(
    workload: FootballWorkload,
    plan: str = "baseline",
    *,
    number: str | None = None,
) -> QueryResult:
    """Relate jersey-OCR patches back to their player detections per clip.

    ``baseline``: no lineage index — every OCR hit rescans the players
    collection to find the detection it came from. ``optimized``: the OCR
    patch's lineage parent pointer resolves the detection directly, and a
    hash index finds the OCR hits.
    """
    number = number or workload.dataset.tracked_number
    players, jerseys = workload.players, workload.jerseys
    with Timer() as timer:
        trajectory: set[tuple[str, int]] = set()
        if plan == "baseline":
            hits = [
                patch
                for patch in jerseys.scan(load_data=False)
                if patch["text"].strip() == number
            ]
            # no lineage index: relate each hit back to base data by a
            # linear search over the (once-loaded) players collection
            all_players = list(players.scan(load_data=False))
            for hit in hits:
                for player in all_players:
                    if (
                        player["source"] == hit["source"]
                        and player["frameno"] == hit["frameno"]
                        and player.bbox == hit.bbox
                    ):
                        trajectory.add((player["source"], player["frameno"]))
                        break
        elif plan == "optimized":
            index = jerseys.index("text", "hash")
            for patch_id in index.lookup(number):
                hit = jerseys.get(patch_id, load_data=False)
                parent_id = hit.img_ref.parent_id
                if parent_id is None:
                    continue
                player = players.get(parent_id, load_data=False)
                trajectory.add((player["source"], player["frameno"]))
        else:
            raise QueryError(f"unknown q3 plan {plan!r}")
        answer = sorted(trajectory)
    truth = {
        (clip_id, frameno)
        for clip_id, steps in workload.dataset.tracked_trajectories().items()
        for frameno, _ in steps
    }
    return QueryResult(
        name="q3",
        plan=plan,
        answer=answer,
        seconds=timer.seconds,
        accuracy=set_prf(trajectory, truth),
    )


# -- q4: count distinct pedestrians -------------------------------------------


def q4_distinct_pedestrians(
    workload: TrafficWorkload,
    plan: str = "baseline",
    *,
    persons: MaterializedCollection | None = None,
    threshold: float = Q4_THRESHOLD,
    on_the_fly: bool = False,
) -> QueryResult:
    """Count distinct pedestrians by deduplicating person detections.

    ``baseline``: filter persons, all-pairs match, union-find clusters.
    ``optimized``: probe the prebuilt Ball-tree over the materialized
    person collection (the hand-tuned physical design), or build the tree
    on the fly when ``on_the_fly`` (the Figure 5 variant).
    """
    with Timer() as timer:
        if plan == "baseline":
            candidates = [
                patch
                for patch in workload.detections.scan(load_data=False)
                if patch["label"] == "person"
            ]
            pairs = _nested_loop_pairs(candidates, threshold)
        elif plan == "optimized":
            if persons is None:
                raise QueryError(
                    "q4 optimized plan needs the prepared person collection "
                    "(prepare_traffic_design)"
                )
            candidates = list(persons.scan(load_data=False))
            if on_the_fly:
                tree = BallTree(
                    np.stack([patch[HIST_KEY] for patch in candidates]),
                    ids=[patch.patch_id for patch in candidates],
                )
            else:
                tree = persons.index(HIST_KEY, "balltree")
            probes = np.stack([patch[HIST_KEY] for patch in candidates])
            pairs = set()
            for patch, hits in zip(
                candidates, tree.query_radius_batch(probes, threshold)
            ):
                for other_id in hits:
                    if int(other_id) != patch.patch_id:
                        pairs.add(frozenset((patch.patch_id, int(other_id))))
        else:
            raise QueryError(f"unknown q4 plan {plan!r}")
        clusters = cluster_pairs(
            [patch.patch_id for patch in candidates],
            [tuple(pair) for pair in pairs if len(pair) == 2],
        )
        answer = len(clusters)
    accuracy = pairwise_cluster_prf(
        clusters, _pedestrian_identity_map(candidates, workload)
    )
    return QueryResult(
        name="q4",
        plan=plan + ("+otf" if on_the_fly and plan == "optimized" else ""),
        answer=answer,
        seconds=timer.seconds,
        accuracy=accuracy,
    )


def _pedestrian_identity_map(candidates, workload: TrafficWorkload) -> dict:
    """Patch id -> pedestrian identity for exactly the candidate patches.

    Identities resolve from each patch's own bbox/frame against the scene
    ground truth, so the map is valid in any collection's id space
    (detections or the re-materialized persons subset).
    """
    out: dict[int, str | None] = {}
    for patch in candidates:
        identity = assign_identity(
            patch.bbox, workload.dataset.ground_truth(patch["frameno"])
        )
        out[patch.patch_id] = (
            identity if identity is not None and identity.startswith("ped-") else None
        )
    return out


def _pedestrian_identities(workload: TrafficWorkload) -> dict[int, str | None]:
    return {
        patch_id: (
            identity
            if identity is not None and identity.startswith("ped-")
            else None
        )
        for patch_id, identity in workload.identity_of.items()
    }


def q4_plan_accuracy(
    workload: TrafficWorkload,
    order: str,
    *,
    threshold: float = Q4_THRESHOLD,
) -> QueryResult:
    """Table 1: the two operator orders for q4.

    ``filter-then-match`` (Patch, Filter, Match): label filter *before*
    matching — mislabeled pedestrians never reach the matcher.
    ``match-then-filter`` (Patch, Match, Filter): match every detection,
    then keep clusters containing at least one person label.
    """
    # both orders use the vectorized (AVX) matcher so the runtime ratio
    # isolates the *amount* of matching work, as in the paper's Table 1
    detections = list(workload.detections.scan(load_data=False))
    label_of = {p.patch_id: p["label"] for p in detections}
    with Timer() as timer:
        if order == "filter-then-match":
            candidates = [p for p in detections if p["label"] == "person"]
            pairs = _all_pairs_matches(candidates, threshold)
            clusters = cluster_pairs(
                [p.patch_id for p in candidates],
                [tuple(pair) for pair in pairs if len(pair) == 2],
            )
        elif order == "match-then-filter":
            all_pairs = _all_pairs_matches(detections, threshold)
            # the late filter keeps *pairs* with at least one person label
            pairs = {
                pair
                for pair in all_pairs
                if any(label_of.get(member) == "person" for member in pair)
            }
            items = {member for pair in pairs for member in pair}
            items |= {p.patch_id for p in detections if p["label"] == "person"}
            clusters = cluster_pairs(
                sorted(items), [tuple(pair) for pair in pairs if len(pair) == 2]
            )
        else:
            raise QueryError(f"unknown q4 order {order!r}")
        answer = len(clusters)
    accuracy = pairwise_cluster_prf(
        clusters, _pedestrian_identity_map(detections, workload)
    )
    return QueryResult(
        name="q4-accuracy",
        plan=order,
        answer=answer,
        seconds=timer.seconds,
        accuracy=accuracy,
    )


# -- q5: look up the presence of a string --------------------------------------


def q5_string_lookup(
    workload: PCWorkload,
    plan: str = "baseline",
    *,
    target: str,
) -> QueryResult:
    """First image whose OCR text contains ``target`` (substring search).

    Both plans scan: a substring predicate "does not benefit from any of
    the available indexes" (the paper's point about q5 in Figure 4). The
    exact-token variant that *can* use the inverted index is
    :func:`q5_token_lookup` (an ablation beyond the paper).
    """
    texts = workload.texts
    target = target.upper()
    with Timer() as timer:
        if plan not in ("baseline", "optimized"):
            raise QueryError(f"unknown q5 plan {plan!r}")
        operator = Select(CollectionScan(texts), Attr("text").contains(target))
        first = None
        best_frame = None
        for (patch,) in operator:
            if best_frame is None or patch["frameno"] < best_frame:
                best_frame = patch["frameno"]
                first = patch["image_id"]
        answer = first
    expected = workload.dataset.images_with_word(target)
    truth_first = expected[0] if expected else None
    accuracy = PRF(
        precision=1.0 if answer == truth_first else 0.0,
        recall=1.0 if answer == truth_first else 0.0,
    )
    return QueryResult(
        name="q5", plan=plan, answer=answer, seconds=timer.seconds, accuracy=accuracy
    )


def q5_token_lookup(workload: PCWorkload, *, target: str) -> QueryResult:
    """Exact-token lookup via the inverted hash index (ablation)."""
    texts = workload.texts
    target = target.upper()
    with Timer() as timer:
        index = texts.index("tokens", "hash")
        hits = [texts.get(patch_id) for patch_id in index.lookup(target)]
        answer = min(
            (patch["image_id"] for patch in hits), default=None
        )
    expected = workload.dataset.images_with_word(target)
    truth_first = expected[0] if expected else None
    accuracy = PRF(
        precision=1.0 if answer == truth_first else 0.0,
        recall=1.0 if answer == truth_first else 0.0,
    )
    return QueryResult(
        name="q5-token",
        plan="optimized",
        answer=answer,
        seconds=timer.seconds,
        accuracy=accuracy,
    )


# -- q6: pedestrian behind pedestrian ------------------------------------------


def q6_behind_pairs(
    workload: TrafficWorkload,
    plan: str = "baseline",
    *,
    persons: MaterializedCollection | None = None,
    margin: float = Q6_MARGIN,
) -> QueryResult:
    """All pairs (p1, p2) of same-frame pedestrians with p1 behind p2.

    "Behind" = overlapping horizontal extent and predicted depth at least
    ``margin`` metres greater. ``baseline``: nested loop over all person
    pairs. ``optimized``: B+ tree equality join on frameno prunes the
    candidate pairs to same-frame ones.
    """

    def is_behind(a, b) -> bool:
        ax1, _, ax2, _ = a.bbox
        bx1, _, bx2, _ = b.bbox
        if min(ax2, bx2) - max(ax1, bx1) <= 0:
            return False
        return a["depth"] > b["depth"] + margin

    with Timer() as timer:
        matched: set[tuple[int, int]] = set()
        matched_patches: list = []
        if plan == "baseline":
            candidates = [
                patch
                for patch in workload.detections.scan(load_data=False)
                if patch["label"] == "person"
            ]
            for a in candidates:
                for b in candidates:
                    if (
                        a.patch_id != b.patch_id
                        and a["frameno"] == b["frameno"]
                        and is_behind(a, b)
                    ):
                        if (a.patch_id, b.patch_id) not in matched:
                            matched.add((a.patch_id, b.patch_id))
                            matched_patches.append((a, b))
        elif plan == "optimized":
            if persons is None:
                raise QueryError(
                    "q6 optimized plan needs the prepared person collection"
                )
            join = IndexEqJoin(
                CollectionScan(persons, load_data=False),
                persons,
                left_key=lambda patch: patch["frameno"],
                right_attr="frameno",
                kind="btree",
                load_data=False,
            )
            for a, b in join:
                if a.patch_id != b.patch_id and is_behind(a, b):
                    if (a.patch_id, b.patch_id) not in matched:
                        matched.add((a.patch_id, b.patch_id))
                        matched_patches.append((a, b))
        else:
            raise QueryError(f"unknown q6 plan {plan!r}")
        answer = len(matched)
    # accuracy at identity-pair granularity: per-frame tuples are too
    # brittle (the behind pedestrian is often partially occluded, so exact
    # frame agreement with ground truth is noise-dominated)
    predicted_ids = {
        (_person_identity(a, workload), _person_identity(b, workload))
        for a, b in matched_patches
    }
    truth = _q6_truth(workload, margin)
    accuracy = set_prf(
        {item for item in predicted_ids if item[0] and item[1]}, truth
    )
    return QueryResult(
        name="q6", plan=plan, answer=answer, seconds=timer.seconds, accuracy=accuracy
    )


def _person_identity(patch, workload: TrafficWorkload) -> str | None:
    identity = assign_identity(
        patch.bbox, workload.dataset.ground_truth(patch["frameno"])
    )
    if identity is not None and identity.startswith("ped-"):
        return identity
    return None


def _q6_truth(workload: TrafficWorkload, margin: float) -> set[tuple[str, str]]:
    """Identity pairs (behind, front) that are *observably* behind: the
    rear pedestrian must be at least half visible (heavy occlusion means
    no detector — synthetic or neural — can report the pair)."""
    out: set[tuple[str, str]] = set()
    for frame in range(workload.dataset.n_frames):
        people = [
            box
            for box in workload.dataset.ground_truth(frame)
            if box.category == "person"
        ]
        for a in people:
            for b in people:
                if a.object_id == b.object_id:
                    continue
                overlap = min(a.bbox[2], b.bbox[2]) - max(a.bbox[0], b.bbox[0])
                if overlap <= 0:
                    continue
                a_width = max(a.bbox[2] - a.bbox[0], 1)
                if overlap > 0.5 * a_width:
                    continue  # rear pedestrian mostly hidden
                if a.depth > b.depth + margin:
                    out.add((a.object_id, b.object_id))
    return out
