"""The Section 6 benchmark: six queries, workload builders, metrics."""

from repro.bench.metrics import PRF, QueryResult, Timer, set_prf, speedup
from repro.bench.queries import (
    prepare_football_design,
    prepare_pc_design,
    prepare_traffic_design,
    q1_near_duplicates,
    q2_vehicle_frames,
    q3_player_trajectory,
    q4_distinct_pedestrians,
    q4_plan_accuracy,
    q5_string_lookup,
    q5_token_lookup,
    q6_behind_pairs,
)
from repro.bench.workload import (
    build_football_workload,
    build_pc_workload,
    build_traffic_workload,
)

__all__ = [
    "PRF",
    "QueryResult",
    "Timer",
    "build_football_workload",
    "build_pc_workload",
    "build_traffic_workload",
    "prepare_football_design",
    "prepare_pc_design",
    "prepare_traffic_design",
    "q1_near_duplicates",
    "q2_vehicle_frames",
    "q3_player_trajectory",
    "q4_distinct_pedestrians",
    "q4_plan_accuracy",
    "q5_string_lookup",
    "q5_token_lookup",
    "q6_behind_pairs",
    "set_prf",
    "speedup",
]
