"""Accuracy metrics and timing helpers for the benchmark workload.

The paper reports precision/recall for q4's plan variants (Table 1) and
accuracy degradation under lossy encoding (Figure 2). Ground truth comes
from the synthetic scenes, so metrics are computed, not hand-annotated:

* detection-to-identity assignment by IoU (greedy, threshold 0.5);
* set precision/recall/F1 for pair sets and element sets;
* *pairwise* clustering metrics for deduplication quality — the standard
  way to score an entity-resolution clustering against true identities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.vision.models.base import iou
from repro.vision.scene import GroundTruthBox


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __repr__(self) -> str:
        return f"PRF(P={self.precision:.3f}, R={self.recall:.3f}, F1={self.f1:.3f})"


def set_prf(predicted: set, truth: set) -> PRF:
    """Precision/recall of a predicted set against a truth set."""
    if not predicted:
        return PRF(precision=1.0 if not truth else 0.0, recall=0.0 if truth else 1.0)
    hits = len(predicted & truth)
    precision = hits / len(predicted)
    recall = hits / len(truth) if truth else 1.0
    return PRF(precision=precision, recall=recall)


def assign_identity(
    bbox: tuple[int, int, int, int],
    truth_boxes: Iterable[GroundTruthBox],
    *,
    min_iou: float = 0.5,
    category: str | None = None,
) -> str | None:
    """Ground-truth identity for a detection box (best IoU above threshold)."""
    best_id, best_iou = None, min_iou
    for gt in truth_boxes:
        if category is not None and gt.category != category:
            continue
        overlap = iou(tuple(bbox), gt.bbox)
        if overlap > best_iou:
            best_id, best_iou = gt.object_id, overlap
    return best_id


def pairwise_cluster_prf(
    clusters: list[set[Hashable]], identity_of: dict[Hashable, str | None]
) -> PRF:
    """Pairwise precision/recall of a clustering against true identities.

    An item pair is *predicted positive* when both sit in one cluster and
    *truly positive* when both carry the same (non-None) identity. Pairs
    whose members *both* lack a resolvable identity are excluded entirely:
    they belong to entities outside the query's universe (e.g. vehicle
    patches in a pedestrian dedup), so grouping them is neither right nor
    wrong for this query. A pair with exactly one resolvable member still
    counts against precision — that is a genuine dedup error.
    """
    predicted: set[frozenset] = set()
    for cluster in clusters:
        members = sorted(cluster, key=str)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if identity_of.get(a) is None and identity_of.get(b) is None:
                    continue
                predicted.add(frozenset((a, b)))
    truth: set[frozenset] = set()
    by_identity: dict[str, list[Hashable]] = {}
    for item, identity in identity_of.items():
        if identity is not None:
            by_identity.setdefault(identity, []).append(item)
    for members in by_identity.values():
        members = sorted(members, key=str)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                truth.add(frozenset((a, b)))
    return set_prf(predicted, truth)


def detection_prf(
    detections_per_frame: dict[int, list],
    truth_per_frame: dict[int, list[GroundTruthBox]],
    *,
    min_iou: float = 0.5,
) -> PRF:
    """Detection-level precision/recall: greedy IoU matching per frame.

    ``detections_per_frame`` maps frame -> list of Detection objects (or
    anything with ``bbox``/``label``); a detection is a true positive when
    it matches an unmatched ground-truth box of the same category with
    IoU >= ``min_iou``.
    """
    tp = fp = fn = 0
    for frame, truth_boxes in truth_per_frame.items():
        detections = list(detections_per_frame.get(frame, []))
        unmatched = list(truth_boxes)
        for det in sorted(detections, key=lambda d: -getattr(d, "score", 1.0)):
            best, best_overlap = None, min_iou
            for gt in unmatched:
                if gt.category != det.label:
                    continue
                overlap = iou(tuple(det.bbox), gt.bbox)
                if overlap > best_overlap:
                    best, best_overlap = gt, overlap
            if best is not None:
                unmatched.remove(best)
                tp += 1
            else:
                fp += 1
        fn += len(unmatched)
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return PRF(precision=precision, recall=recall)


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class QueryResult:
    """One benchmark query execution: answer + timing + accuracy."""

    name: str
    plan: str  # 'baseline' | 'optimized' | variant name
    answer: object
    seconds: float
    accuracy: PRF | None = None

    def __repr__(self) -> str:
        acc = f", {self.accuracy}" if self.accuracy else ""
        return (
            f"QueryResult({self.name}/{self.plan}: {self.seconds * 1000:.1f} ms"
            f"{acc})"
        )


def speedup(baseline: QueryResult, optimized: QueryResult) -> float:
    if optimized.seconds <= 0:
        return float("inf")
    return baseline.seconds / optimized.seconds
