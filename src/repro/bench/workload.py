"""Benchmark workload builders: datasets -> populated DeepLens databases.

Each builder ingests one synthetic dataset, runs its ETL pipeline
(detector / OCR / featurizers — the "ETL time" the paper amortizes), and
materializes the collections the six queries run over. Builders create
**no indexes**: physical design is exactly what the benchmarks vary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.metrics import Timer, assign_identity
from repro.core.catalog import MaterializedCollection
from repro.core.patch import Patch
from repro.core.session import DeepLens
from repro.datasets import FootballDataset, PCDataset, TrafficCamDataset
from repro.etl import (
    CropTransformer,
    DepthTransformer,
    HistogramTransformer,
    ObjectDetectorGenerator,
    OCRGenerator,
    Pipeline,
)
import numpy as np

from repro.vision import DetectorNoise, MonocularDepth, SyntheticSSD, TemplateOCR
from repro.vision.features import color_histogram_soft, gradient_histogram

#: feature key used by the TrafficCam matching queries
HIST_KEY = "hist"
#: histogram bins -> 64-d features (bins**3)
HIST_BINS = 4
#: combined colour+structure feature used by the PC matching query (q1):
#: soft-binned joint histogram (125-d) + weighted HOG (128-d)
MATCH_KEY = "matchvec"
MATCH_HOG_WEIGHT = 0.6


@dataclass
class TrafficWorkload:
    """TrafficCam ingested: detections with histogram features and depth."""

    db: DeepLens
    dataset: TrafficCamDataset
    detections: MaterializedCollection
    etl_seconds: float
    #: patch id -> ground-truth identity (None = unmatched/noise)
    identity_of: dict[int, str | None] = field(default_factory=dict)


def build_traffic_workload(
    db: DeepLens,
    dataset: TrafficCamDataset,
    *,
    layout: str = "segmented",
    clip_len: int = 32,
    noise: DetectorNoise | None = None,
    collection_name: str = "detections",
) -> TrafficWorkload:
    noise = noise if noise is not None else DetectorNoise(seed=dataset.spec.seed)
    pipeline = Pipeline(
        [
            ObjectDetectorGenerator(SyntheticSSD(noise=noise)),
            HistogramTransformer(bins=HIST_BINS, key=HIST_KEY),
            DepthTransformer(MonocularDepth(dataset.camera, seed=dataset.spec.seed)),
        ]
    )
    with Timer() as timer:
        kwargs = {"clip_len": clip_len} if layout == "segmented" else {}
        db.ingest_video("trafficcam", dataset.frames(), layout=layout, **kwargs)
        detections = db.materialize(
            pipeline.run(db.load("trafficcam")),
            collection_name,
            schema=pipeline.output_schema,
        )
    identity_of = {
        patch.patch_id: assign_identity(
            patch.bbox, dataset.ground_truth(patch["frameno"])
        )
        for patch in detections.scan()
    }
    return TrafficWorkload(
        db=db,
        dataset=dataset,
        detections=detections,
        etl_seconds=timer.seconds,
        identity_of=identity_of,
    )


@dataclass
class PCWorkload:
    """PC corpus ingested: whole images with features, plus OCR text."""

    db: DeepLens
    dataset: PCDataset
    images: MaterializedCollection
    texts: MaterializedCollection
    etl_seconds: float


def build_pc_workload(db: DeepLens, dataset: PCDataset) -> PCWorkload:
    featurize = HistogramTransformer(bins=HIST_BINS, key=HIST_KEY)
    ocr = TemplateOCR()
    with Timer() as timer:
        def image_patches():
            for index, image in enumerate(dataset):
                patch = Patch.from_frame("pc", index, image.pixels)
                patch.metadata["image_id"] = image.image_id
                patch.metadata["kind"] = image.kind
                patch.metadata[MATCH_KEY] = np.concatenate(
                    [
                        color_histogram_soft(image.pixels, bins=5),
                        MATCH_HOG_WEIGHT
                        * gradient_histogram(image.pixels, grid=4, orientations=8),
                    ]
                )
                yield featurize.transform(patch)

        images = db.materialize(image_patches(), "images")

        def text_patches():
            generator = OCRGenerator(ocr)
            for patch in images.scan():
                yield from generator.generate(patch)

        texts = db.materialize(text_patches(), "texts")
    return PCWorkload(
        db=db,
        dataset=dataset,
        images=images,
        texts=texts,
        etl_seconds=timer.seconds,
    )


@dataclass
class FootballWorkload:
    """Football clips ingested: player detections plus jersey OCR."""

    db: DeepLens
    dataset: FootballDataset
    players: MaterializedCollection
    jerseys: MaterializedCollection
    etl_seconds: float


def build_football_workload(
    db: DeepLens,
    dataset: FootballDataset,
    *,
    noise: DetectorNoise | None = None,
) -> FootballWorkload:
    noise = noise if noise is not None else DetectorNoise(
        p_mislabel=0.0, p_miss=0.0, p_false_positive=0.0
    )
    detector = ObjectDetectorGenerator(SyntheticSSD(noise=noise))
    # jersey numbers sit on the torso: crop below the head before OCR
    torso = CropTransformer(top=0.25, bottom=0.75)
    ocr = OCRGenerator(TemplateOCR())
    with Timer() as timer:
        def player_patches():
            for clip in dataset.clips:
                for frameno, pixels in enumerate(clip.frames()):
                    frame_patch = Patch.from_frame(clip.clip_id, frameno, pixels)
                    for detection in detector.generate(frame_patch):
                        if detection["label"] == "person":
                            yield detection

        players = db.materialize(player_patches(), "players")

        def jersey_patches():
            for patch in players.scan():
                cropped = torso.transform(patch)
                yield from ocr.generate(cropped)

        jerseys = db.materialize(jersey_patches(), "jerseys")
    return FootballWorkload(
        db=db,
        dataset=dataset,
        players=players,
        jerseys=jerseys,
        etl_seconds=timer.seconds,
    )
