"""Legacy setup shim: this environment's pip/setuptools lacks the wheel
package, so editable installs must go through the setup.py code path."""

from setuptools import setup

setup()
